// Package workload synthesizes the write streams of the paper's
// benchmarks (§VII.B: twelve write-intensive SPEC CPU2006 programs plus
// canneal from PARSEC) without their proprietary inputs or a full-system
// simulator. Each benchmark is modeled as a mixture of *line archetypes*
// — value populations with distinct compressibility and bias signatures
// (zero-dominated, small integers, pointer arrays, walking chains of
// wide integers, clustered doubles, text, random) — plus a rewrite model
// controlling how much of a line changes per write. DESIGN.md §2
// documents the substitution and its calibration targets (Figure 4
// coverage, Figure 8/9 magnitudes).
package workload

import (
	"wlcrc/internal/memline"
	"wlcrc/internal/prng"
)

// Archetype identifies a line-content population.
type Archetype int

// The archetypes. The ChainN families generate "walking" sequences of
// wide integers whose most-significant run is exactly N bits: each word
// advances by a delta too large for a single BDI base to span but small
// enough for word-to-word delta compressors (COC) — the population that
// separates WLC/COC coverage from FPC+BDI coverage in Figure 4.
const (
	Zero     Archetype = iota // all-zero and near-zero lines
	SmallInt                  // 8-16 bit signed integers
	MedInt                    // ~32-bit integers
	Pointer                   // heap pointers in one region, BDI-friendly
	Chain6                    // walking 58-significant-bit values (MSB run 6)
	Chain7                    // MSB run 7
	Chain8                    // MSB run 8
	Chain9                    // MSB run 9
	Chain12                   // MSB run 12
	Double                    // clustered IEEE-754 doubles
	Text                      // ASCII payloads
	Random                    // incompressible noise
	numArchetypes
)

// String implements fmt.Stringer.
func (a Archetype) String() string {
	names := [...]string{
		"Zero", "SmallInt", "MedInt", "Pointer", "Chain6", "Chain7",
		"Chain8", "Chain9", "Chain12", "Double", "Text", "Random",
	}
	if int(a) < len(names) {
		return names[a]
	}
	return "Archetype(?)"
}

// lineContext carries per-line generator state so rewrites stay within
// the line's population (a rewritten pointer array is still a pointer
// array into the same region).
type lineContext struct {
	arch Archetype
	base uint64 // region base (Pointer), chain start (ChainN), cluster center (Double)
	step uint64 // chain stride scale
}

// newContext draws the per-line parameters of an archetype.
func newContext(arch Archetype, r *prng.Xoshiro256) lineContext {
	ctx := lineContext{arch: arch}
	switch arch {
	case Pointer:
		// One mmap-like region: 47-bit user-space base, 256MB span.
		ctx.base = 0x0000_7f00_0000_0000 | uint64(r.Uint32()&0x0fff)<<28
	case Chain6, Chain7, Chain8, Chain9, Chain12:
		run := chainRun(arch)
		// Start value with MSB run exactly `run`: bit (63-run) differs
		// from the top bits, top `run` bits all equal (0 or 1). The
		// low 32 payload bits are biased 16-bit chunks — real wide
		// values carry runs of 0s and 1s plus packed small fields,
		// which is what coset coding exploits — while the bits above
		// the walk counter stay noisy (keeping the 32-bit halves
		// incompressible for FPC, as measured pointer-tagged data is).
		sig := 64 - run // significant payload bits incl. the leading flip
		v := r.Uint64()&(1<<uint(sig-1)-1)&^0xffffffff | biasedTail32(r)
		v |= 1 << uint(sig-1) // force the run-terminating bit
		if r.Bool(0.5) {
			v = ^v & (1<<uint(sig) - 1) // negative flavor
			v = memline.SignExtend(v|1<<uint(sig-1), sig)
			// ensure the flip bit is 0 for the all-ones run
			v &^= 1 << uint(sig-1)
		}
		ctx.base = v
		// Stride in bits 33+: large enough that the span across a line
		// defeats any single BDI base (>> 2^31) even against the noise
		// of per-word tails, yet small enough for COC's 40-bit
		// word-to-word delta compressor.
		ctx.step = 1<<33 + uint64(r.Uint32()&0x7)<<30
	case Double:
		// Cluster center: a double in [1, 2^10) — realistic simulation
		// magnitudes. Exponent field 0x3FF..0x409; the mantissa keeps 20
		// significant bits (computed values rarely use full precision).
		exp := uint64(0x3FF + r.Intn(10))
		ctx.base = exp<<52 | uint64(r.Uint32()&(1<<20-1))<<32
	}
	return ctx
}

// biasedChunks builds an nbits-wide value from 16-bit chunks drawn from
// the biased populations real memory content exhibits: zero runs, one
// runs, small positive and small negative fields, alternating-bit masks
// (packed booleans / RGB-style fields, the '01'/'10' symbol populations
// that make candidate C3 worthwhile), and occasional noise. Different
// chunks land in different 16-bit coset blocks, which is exactly the
// intra-line heterogeneity that makes fine-grain encoding beat one
// line-global mapping.
func biasedChunks(r *prng.Xoshiro256, nbits int) uint64 {
	var v uint64
	for lo := 0; lo < nbits; lo += 16 {
		var chunk uint64
		switch r.Pick(biasedChunkWeights[:]) {
		case 0: // zeros
			chunk = 0x0000
		case 1: // ones
			chunk = 0xffff
		case 2: // small positive
			chunk = uint64(1 + r.Intn(255))
		case 3: // small negative
			chunk = 0xffff &^ uint64(r.Intn(255))
		case 4: // alternating 01 symbols
			chunk = 0x5555
		case 5: // alternating 10 symbols
			chunk = 0xaaaa
		default: // noise
			chunk = uint64(r.Uint32() & 0xffff)
		}
		v |= chunk << uint(lo)
	}
	if nbits < 64 {
		v &= 1<<uint(nbits) - 1
	}
	return v
}

// biasedTail32 draws a 32-bit biased field tail.
func biasedTail32(r *prng.Xoshiro256) uint64 { return biasedChunks(r, 32) }

// bitmapWord produces a packed-boolean / mask word of the given width:
// alternating-bit patterns whose symbols are the '01'/'10' populations
// that only candidate C3 (or a per-block choice) stores cheaply.
func bitmapWord(r *prng.Xoshiro256, width int) uint64 {
	pats := [4]uint64{
		0x5555555555555555, 0xaaaaaaaaaaaaaaaa,
		0x5a5a5a5a5a5a5a5a, 0x5500550055005500,
	}
	return pats[r.Intn(4)] & (1<<uint(width) - 1)
}

var biasedChunkWeights = [7]float64{29, 29, 10, 10, 8, 6, 8}

func chainRun(a Archetype) int {
	switch a {
	case Chain6:
		return 6
	case Chain7:
		return 7
	case Chain8:
		return 8
	case Chain9:
		return 9
	case Chain12:
		return 12
	}
	panic("workload: not a chain archetype")
}

// genLine generates a fresh line of the context's population.
func (ctx *lineContext) genLine(r *prng.Xoshiro256) memline.Line {
	var l memline.Line
	for w := 0; w < memline.LineWords; w++ {
		l.SetWord(w, ctx.genWord(w, &l, r))
	}
	return l
}

// genWord generates word w; for chain archetypes it continues from word
// w-1 of the line under construction.
func (ctx *lineContext) genWord(w int, l *memline.Line, r *prng.Xoshiro256) uint64 {
	switch ctx.arch {
	case Zero:
		if r.Bool(0.85) {
			return 0
		}
		return uint64(r.Uint32() & 0xff)
	case SmallInt:
		if r.Bool(0.12) {
			return bitmapWord(r, 16)
		}
		bits := 8 + r.Intn(9) // 8..16 significant bits
		v := r.Uint64() & (1<<uint(bits) - 1)
		if r.Bool(0.45) {
			return -v // two's complement: a run of 1s above the magnitude
		}
		return v
	case MedInt:
		if r.Bool(0.12) {
			return bitmapWord(r, 32)
		}
		bits := 20 + r.Intn(13) // 20..32 bits
		v := r.Uint64() & (1<<uint(bits) - 1)
		if r.Bool(0.45) {
			return -v
		}
		return v
	case Pointer:
		if r.Bool(0.15) {
			return 0 // NULL
		}
		// Allocation-aligned offsets: the low bits stay zero, so pointer
		// churn flips the biased (00-run) region rarely.
		return ctx.base | uint64(r.Uint32()&0x0fff_ffff)&^0x3f
	case Chain6, Chain7, Chain8, Chain9, Chain12:
		if w == 0 {
			// Fresh generations redraw the biased tails and only
			// occasionally drift the walk start: the churned cells are
			// the biased field content the encoders are designed for,
			// not the (incompressible-looking) counter bits.
			v := ctx.base
			if r.Bool(0.3) {
				v += uint64(1+r.Intn(7)) << 33
				ctx.base = v
			}
			v = v&^0xffffffff | biasedTail32(r)
			return ctx.chainClamp(v)
		}
		// Monotonic walk in the bits above the tail: the span across
		// eight words dwarfs 2^31, so no single BDI base covers the
		// line, while each word-to-word delta (stride plus tail
		// difference) fits COC's 40-bit delta compressor. Every word
		// gets its own biased tail.
		prev := l.Word(w - 1)
		v := (prev+ctx.step)&^0xffffffff | biasedTail32(r)
		return ctx.chainClamp(v)
	case Double:
		// Same cluster: identical exponent, nearby 20-bit mantissa with
		// the unused precision zero. Deltas fit well under 8-byte-base
		// BDI and COC but the MSB run is tiny.
		mant := (ctx.base>>32&(1<<20-1) + uint64(r.Uint32()&(1<<12-1))) & (1<<20 - 1)
		return ctx.base&^(1<<52-1) | mant<<32
	case Text:
		var v uint64
		for b := 0; b < 8; b++ {
			v |= uint64(0x20+r.Intn(95)) << uint(8*b)
		}
		return v
	default: // Random
		return r.Uint64()
	}
}

// chainClamp keeps a chain value's MSB run exactly at the archetype's
// run length so the whole line stays in its WLC compressibility band.
func (ctx *lineContext) chainClamp(v uint64) uint64 {
	run := chainRun(ctx.arch)
	sig := 64 - run
	top := v >> 63
	// Rebuild: top `run` bits = replicated top, bit (63-run) = ^top,
	// low bits from v.
	var out uint64
	if top == 1 {
		out = ^uint64(0) << uint(sig)
	}
	out |= v & (1<<uint(sig-1) - 1)
	if top == 0 {
		out |= 1 << uint(sig-1)
	}
	return out
}

// mutateWord rewrites one word in-place according to the population:
// value drift for numeric populations, fresh draws for text/random.
func (ctx *lineContext) mutateWord(w int, l *memline.Line, r *prng.Xoshiro256) {
	switch ctx.arch {
	case Zero, SmallInt, MedInt, Text, Random:
		l.SetWord(w, ctx.genWord(w, l, r))
	case Pointer:
		if r.Bool(0.3) {
			l.SetWord(w, ctx.genWord(w, l, r))
		} else {
			// Pointer bump within the region.
			v := l.Word(w)
			if v == 0 {
				l.SetWord(w, ctx.genWord(w, l, r))
			} else {
				l.SetWord(w, ctx.base|((v+uint64(8+r.Intn(4096)&^7))&0x0fff_ffff))
			}
		}
	case Chain6, Chain7, Chain8, Chain9, Chain12:
		if r.Bool(0.6) {
			// Field update: the biased tail is rewritten.
			v := l.Word(w)&^0xffffffff | biasedTail32(r)
			l.SetWord(w, ctx.chainClamp(v))
		} else {
			// Counter drift above the tail.
			v := l.Word(w) + uint64(1+r.Intn(63))<<30
			l.SetWord(w, ctx.chainClamp(v))
		}
	case Double:
		// Recompute within the cluster: top mantissa bits move, the
		// unused low mantissa stays zero.
		mant := (l.Word(w)>>32&(1<<20-1) + uint64(1+r.Intn(1023))) & (1<<20 - 1)
		l.SetWord(w, l.Word(w)&^(uint64(1)<<52-1)|mant<<32)
	}
}
