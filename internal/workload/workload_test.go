package workload

import (
	"testing"

	"wlcrc/internal/compress"
	"wlcrc/internal/memline"
	"wlcrc/internal/prng"
	"wlcrc/internal/trace"
)

func TestProfilesWellFormed(t *testing.T) {
	profs := Profiles()
	if len(profs) != 12 {
		t.Fatalf("got %d profiles, want 12 (SPEC + canneal)", len(profs))
	}
	hmi := 0
	for _, p := range profs {
		var sum float64
		for _, w := range p.Mix {
			if w < 0 {
				t.Errorf("%s: negative mixture weight", p.Name)
			}
			sum += w
		}
		if sum < 99.9 || sum > 100.1 {
			t.Errorf("%s: mixture sums to %v, want 100", p.Name, sum)
		}
		if p.HMI {
			hmi++
		}
	}
	if hmi != 7 {
		t.Errorf("HMI count = %d, want 7 (Figure 8 grouping)", hmi)
	}
	if _, ok := ProfileByName("lesl"); !ok {
		t.Error("ProfileByName(lesl) failed")
	}
	if _, ok := ProfileByName("nope"); ok {
		t.Error("ProfileByName(nope) should fail")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	p, _ := ProfileByName("gcc")
	a := NewGenerator(p, 256, 7)
	b := NewGenerator(p, 256, 7)
	for i := 0; i < 500; i++ {
		ra, _ := a.Next()
		rb, _ := b.Next()
		if ra.Addr != rb.Addr || ra.New != rb.New || ra.Old != rb.Old {
			t.Fatalf("streams diverged at request %d", i)
		}
	}
}

func TestGeneratorOldMatchesHistory(t *testing.T) {
	// The Old field of each request must equal the last New written to
	// the same address (trace consistency).
	p, _ := ProfileByName("mcf")
	g := NewGenerator(p, 128, 3)
	last := map[uint64]memline.Line{}
	for i := 0; i < 2000; i++ {
		r, ok := g.Next()
		if !ok {
			t.Fatal("generator ended")
		}
		if prev, seen := last[r.Addr]; seen {
			if r.Old != prev {
				t.Fatalf("request %d: Old does not match history", i)
			}
		} else if (r.Old != memline.Line{}) {
			t.Fatalf("request %d: first write has nonzero Old", i)
		}
		last[r.Addr] = r.New
	}
}

func TestChainArchetypeRunLengths(t *testing.T) {
	r := prng.New(5)
	for _, a := range []Archetype{Chain6, Chain7, Chain8, Chain9, Chain12} {
		want := chainRun(a)
		for trial := 0; trial < 50; trial++ {
			ctx := newContext(a, r)
			l := ctx.genLine(r)
			for w := 0; w < memline.LineWords; w++ {
				if got := memline.MSBRun(l.Word(w)); got != want {
					t.Fatalf("%v word %d: MSB run %d, want %d (word %#x)",
						a, w, got, want, l.Word(w))
				}
			}
			// Mutation must preserve the band.
			for i := 0; i < 10; i++ {
				w := r.Intn(memline.LineWords)
				ctx.mutateWord(w, &l, r)
				if got := memline.MSBRun(l.Word(w)); got != want {
					t.Fatalf("%v after mutate: run %d, want %d", a, got, want)
				}
			}
		}
	}
}

func TestChainLinesDefeatBDIButNotCOC(t *testing.T) {
	r := prng.New(9)
	okCOC, okFPCBDI := 0, 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		ctx := newContext(Chain6, r)
		l := ctx.genLine(r)
		if compress.COCSize(&l) <= 448 {
			okCOC++
		}
		if compress.FPCBDISize(&l) <= 369 {
			okFPCBDI++
		}
	}
	if okCOC < trials*85/100 {
		t.Errorf("COC covers %d/%d chain lines, want >= 85%%", okCOC, trials)
	}
	if okFPCBDI > trials*10/100 {
		t.Errorf("FPC+BDI covers %d/%d chain lines, want <= 10%%", okFPCBDI, trials)
	}
}

func TestPointerAndDoubleLinesAreBDIFriendly(t *testing.T) {
	r := prng.New(11)
	for _, a := range []Archetype{Pointer, Double} {
		ok := 0
		const trials = 100
		for trial := 0; trial < trials; trial++ {
			ctx := newContext(a, r)
			l := ctx.genLine(r)
			if compress.FPCBDISize(&l) <= 369 {
				ok++
			}
		}
		if ok < trials*90/100 {
			t.Errorf("%v: FPC+BDI covers %d/%d, want >= 90%%", a, ok, trials)
		}
	}
}

// coverage measures, over n fresh lines of a profile, the fraction of
// lines compressible by WLC(k) for k in 4..9, by FPC+BDI (DIN's 369-bit
// gate) and by COC (448-bit gate).
func coverage(t *testing.T, p Profile, n int) (wlc map[int]float64, fpcbdi, coc float64) {
	t.Helper()
	g := NewGenerator(p, 0, 99)
	wlcHits := map[int]int{}
	fb, cc := 0, 0
	for i := 0; i < n; i++ {
		req, _ := g.Next()
		l := req.New
		for k := 4; k <= 9; k++ {
			if (compress.WLC{K: k}).LineCompressible(&l) {
				wlcHits[k]++
			}
		}
		if compress.FPCBDISize(&l) <= 369 {
			fb++
		}
		if compress.COCSize(&l) <= 448 {
			cc++
		}
	}
	wlc = map[int]float64{}
	for k, h := range wlcHits {
		wlc[k] = float64(h) / float64(n)
	}
	return wlc, float64(fb) / float64(n), float64(cc) / float64(n)
}

// TestFigure4CalibrationAverages checks the headline Figure 4 shape:
// WLC covers >= 88% of lines for k <= 6 on average, drops to ~45-60% for
// k = 9; FPC+BDI covers ~25-40%; COC covers >= 88%.
func TestFigure4CalibrationAverages(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep")
	}
	const perBench = 1500
	var sum4, sum6, sum7, sum9, sumFB, sumCOC float64
	profs := Profiles()
	for _, p := range profs {
		wlc, fb, coc := coverage(t, p, perBench)
		t.Logf("%-5s WLC k4=%.2f k6=%.2f k7=%.2f k9=%.2f  FPC+BDI=%.2f COC=%.2f",
			p.Name, wlc[4], wlc[6], wlc[7], wlc[9], fb, coc)
		sum4 += wlc[4]
		sum6 += wlc[6]
		sum7 += wlc[7]
		sum9 += wlc[9]
		sumFB += fb
		sumCOC += coc
	}
	n := float64(len(profs))
	avg4, avg6, avg7, avg9, avgFB, avgCOC := sum4/n, sum6/n, sum7/n, sum9/n, sumFB/n, sumCOC/n
	t.Logf("avg: k4=%.3f k6=%.3f k7=%.3f k9=%.3f FPC+BDI=%.3f COC=%.3f",
		avg4, avg6, avg7, avg9, avgFB, avgCOC)
	if avg6 < 0.88 {
		t.Errorf("average WLC k=6 coverage %.3f, want >= 0.88 (paper: >91%%)", avg6)
	}
	if avg4 < avg6 {
		t.Errorf("k=4 coverage %.3f below k=6 %.3f", avg4, avg6)
	}
	if avg9 < 0.40 || avg9 > 0.65 {
		t.Errorf("average WLC k=9 coverage %.3f, want ~0.48 (paper: 48%%)", avg9)
	}
	if avg7 > avg6-0.2 {
		t.Errorf("k=7 coverage %.3f should drop well below k=6 %.3f (paper: 54%% vs 91%%)", avg7, avg6)
	}
	if avgFB < 0.2 || avgFB > 0.45 {
		t.Errorf("average FPC+BDI coverage %.3f, want ~0.30 (paper: 30%%)", avgFB)
	}
	if avgCOC < 0.85 {
		t.Errorf("average COC coverage %.3f, want >= 0.85 (paper: >90%%)", avgCOC)
	}
}

// TestChurnCalibration checks that the average fraction of symbols
// changed per write is ~25% across benchmarks (paper §IX.C) with the
// intended per-benchmark ordering (lesl churns most).
func TestChurnCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep")
	}
	const writes = 4000
	churn := map[string]float64{}
	var sum float64
	for _, p := range Profiles() {
		g := NewGenerator(p, 0, 5)
		// Warm up so most writes hit initialized lines.
		for i := 0; i < len(g.lines)*2; i++ {
			g.Next()
		}
		total := 0
		counted := 0
		for i := 0; i < writes; i++ {
			req, _ := g.Next()
			total += req.Old.CountDiffSymbols(&req.New)
			counted++
		}
		f := float64(total) / float64(counted) / float64(memline.LineCells)
		churn[p.Name] = f
		sum += f
		t.Logf("%-5s churn %.3f", p.Name, f)
	}
	avg := sum / float64(len(Profiles()))
	t.Logf("average churn %.3f", avg)
	if avg < 0.15 || avg > 0.40 {
		t.Errorf("average churn %.3f, want ~0.25", avg)
	}
	if churn["lesl"] < churn["libq"] {
		t.Error("lesl must churn more than libq")
	}
	if churn["lesl"] < 0.4 {
		t.Errorf("lesl churn %.3f, want >= 0.4 (Figure 9: ~150+/256 cells)", churn["lesl"])
	}
}

func TestLimitedSource(t *testing.T) {
	p, _ := ProfileByName("gcc")
	src := &Limited{Src: NewGenerator(p, 64, 1), N: 10}
	n := 0
	for {
		_, ok := src.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 10 {
		t.Errorf("Limited yielded %d requests, want 10", n)
	}
}

func TestRandomProfile(t *testing.T) {
	g := NewGenerator(RandomProfile(), 64, 2)
	// Random lines should essentially never be WLC-compressible.
	w := compress.WLC{K: 6}
	hits := 0
	for i := 0; i < 200; i++ {
		req, _ := g.Next()
		if w.LineCompressible(&req.New) {
			hits++
		}
	}
	if hits > 2 {
		t.Errorf("%d/200 random lines WLC-compressible", hits)
	}
}

func TestDescribe(t *testing.T) {
	p, _ := ProfileByName("lesl")
	s := Describe(p)
	if s == "" || s[:4] != "lesl" {
		t.Errorf("Describe = %q", s)
	}
}

// TestGeneratorNextBatchMatchesNext pins the bulk-generation contract:
// NextBatch must draw the exact request sequence Next does (same PRNG
// consumption, same line-state evolution), with every field of recycled
// destination slots overwritten.
func TestGeneratorNextBatchMatchesNext(t *testing.T) {
	p, _ := ProfileByName("gcc")
	ref := NewGenerator(p, 128, 7)
	bulk := NewGenerator(p, 128, 7)
	const total, batch = 1024, 64
	want := make([]trace.Request, total)
	for i := range want {
		want[i], _ = ref.Next()
	}
	got := make([]trace.Request, batch)
	for i := range got {
		// Poison the buffer: stale content must never leak into results.
		got[i].Addr = ^uint64(0)
		for j := range got[i].Old {
			got[i].Old[j] = 0xAA
		}
	}
	for off := 0; off < total; off += batch {
		if n := bulk.NextBatch(got); n != batch {
			t.Fatalf("NextBatch = %d, want %d (stream is infinite)", n, batch)
		}
		for i := range got {
			if got[i] != want[off+i] {
				t.Fatalf("request %d differs between Next and NextBatch", off+i)
			}
		}
	}
}

// TestLimitedNextBatch pins the batch budget: fills clip to the
// remaining limit, drain to 0, and match the per-request path.
func TestLimitedNextBatch(t *testing.T) {
	p, _ := ProfileByName("mcf")
	ref := &Limited{Src: NewGenerator(p, 64, 3), N: 10}
	var want []trace.Request
	for {
		req, ok := ref.Next()
		if !ok {
			break
		}
		want = append(want, req)
	}
	if len(want) != 10 {
		t.Fatalf("reference drained %d requests, want 10", len(want))
	}
	lim := &Limited{Src: NewGenerator(p, 64, 3), N: 10}
	dst := make([]trace.Request, 4)
	var got []trace.Request
	for {
		n := lim.NextBatch(dst)
		if n == 0 {
			break
		}
		got = append(got, dst[:n]...)
	}
	if len(got) != 10 {
		t.Fatalf("batch path drained %d requests, want 10", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("request %d differs between Next and NextBatch", i)
		}
	}
	if n := lim.NextBatch(dst); n != 0 {
		t.Errorf("exhausted Limited returned %d", n)
	}
}
