package workload

// Mix is a percentage mixture over line archetypes (entries sum to 100).
type Mix [numArchetypes]float64

// Rewrite parameterizes how much of a line changes per write: with
// probability FreshProb the whole line is regenerated from its
// population (and with RerollProb the line is even repurposed to a new
// population, as an allocator would); otherwise WordsPerWrite words (on
// average) are mutated in place. Together these set the average fraction
// of symbols a write flips — the paper reports ~25% on average (§IX.C)
// with large per-benchmark spread (Figure 9).
type Rewrite struct {
	FreshProb     float64
	WordsPerWrite float64
	RerollProb    float64
}

// Profile models one benchmark's write stream.
type Profile struct {
	Name string
	// HMI marks high memory intensity per the paper's Figure 8 grouping.
	HMI bool
	// Mix is the line-archetype mixture.
	Mix Mix
	// Rewrite controls per-write churn.
	Rewrite Rewrite
	// FootprintLines is the default working-set size in lines.
	FootprintLines int
}

func mix(z, s, m, p, c6, c7, c8, c9, c12, d, t, r float64) Mix {
	return Mix{z, s, m, p, c6, c7, c8, c9, c12, d, t, r}
}

// Profiles returns the thirteen benchmark models of §VII.B: twelve
// write-intensive SPEC CPU2006 programs and canneal from PARSEC, with
// the paper's HMI/LMI grouping (Figure 8). Mixture weights are calibrated
// against the Figure 4 coverage targets (WLC >= 91% for k <= 6, ~48-54%
// for k >= 7, FPC+BDI ~30%) and rewrite churn against the Figure 9
// updated-cells magnitudes; EXPERIMENTS.md records the measured values.
func Profiles() []Profile {
	return []Profile{
		// High memory intensity.
		{Name: "lesl", HMI: true, Mix: mix(4, 4, 4, 3, 51, 8, 5, 8, 4, 5, 2, 2),
			Rewrite: Rewrite{FreshProb: 0.85, WordsPerWrite: 5, RerollProb: 0.50}, FootprintLines: 512},
		{Name: "milc", HMI: true, Mix: mix(5, 3, 4, 3, 47, 6, 6, 12, 4, 6, 2, 2),
			Rewrite: Rewrite{FreshProb: 0.70, WordsPerWrite: 4, RerollProb: 0.40}, FootprintLines: 512},
		{Name: "wrf", HMI: true, Mix: mix(6, 5, 5, 4, 33, 6, 6, 18, 8, 5, 2, 2),
			Rewrite: Rewrite{FreshProb: 0.55, WordsPerWrite: 4, RerollProb: 0.30}, FootprintLines: 512},
		{Name: "sopl", HMI: true, Mix: mix(8, 6, 6, 5, 26, 5, 5, 18, 9, 7, 3, 2),
			Rewrite: Rewrite{FreshProb: 0.45, WordsPerWrite: 4, RerollProb: 0.30}, FootprintLines: 512},
		{Name: "zeus", HMI: true, Mix: mix(6, 4, 5, 4, 35, 7, 5, 16, 7, 6, 3, 2),
			Rewrite: Rewrite{FreshProb: 0.40, WordsPerWrite: 3.5, RerollProb: 0.25}, FootprintLines: 512},
		{Name: "lbm", HMI: true, Mix: mix(4, 3, 3, 2, 43, 8, 5, 17, 3, 8, 2, 2),
			Rewrite: Rewrite{FreshProb: 0.30, WordsPerWrite: 3, RerollProb: 0.20}, FootprintLines: 512},
		{Name: "gcc", HMI: true, Mix: mix(10, 8, 7, 8, 20, 4, 3, 22, 11, 3, 3, 1),
			Rewrite: Rewrite{FreshProb: 0.25, WordsPerWrite: 3, RerollProb: 0.20}, FootprintLines: 512},
		// Low memory intensity.
		{Name: "asta", HMI: false, Mix: mix(8, 6, 5, 10, 22, 4, 4, 20, 9, 3, 6, 3),
			Rewrite: Rewrite{FreshProb: 0.12, WordsPerWrite: 2.5, RerollProb: 0.15}, FootprintLines: 512},
		{Name: "mcf", HMI: false, Mix: mix(10, 6, 6, 15, 14, 3, 3, 22, 12, 2, 4, 3),
			Rewrite: Rewrite{FreshProb: 0.12, WordsPerWrite: 2.5, RerollProb: 0.15}, FootprintLines: 512},
		{Name: "cann", HMI: false, Mix: mix(7, 5, 5, 12, 26, 5, 4, 16, 9, 3, 5, 3),
			Rewrite: Rewrite{FreshProb: 0.10, WordsPerWrite: 2, RerollProb: 0.15}, FootprintLines: 512},
		{Name: "libq", HMI: false, Mix: mix(15, 20, 15, 5, 8, 2, 1, 18, 13, 1, 1, 1),
			Rewrite: Rewrite{FreshProb: 0.08, WordsPerWrite: 2, RerollProb: 0.10}, FootprintLines: 512},
		{Name: "omne", HMI: false, Mix: mix(8, 6, 5, 10, 25, 5, 5, 16, 9, 4, 4, 3),
			Rewrite: Rewrite{FreshProb: 0.10, WordsPerWrite: 2.5, RerollProb: 0.15}, FootprintLines: 512},
	}
}

// ProfileByName returns the named profile, or false.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// RandomProfile models the 200-million-random-lines experiments of
// Figures 1(a) and 2: every write stores fresh uniformly-random content.
func RandomProfile() Profile {
	return Profile{
		Name:           "random",
		Mix:            mix(0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 100),
		Rewrite:        Rewrite{FreshProb: 1, WordsPerWrite: 8},
		FootprintLines: 1024,
	}
}
