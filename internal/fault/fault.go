// Package fault models stuck-at cell failures and the controller-side
// repair pipeline that tolerates them: PCM cells wear out after a
// bounded number of program cycles and freeze at their last-programmed
// state (stuck-at faults), and a production controller layers recourses
// — re-encode retries, ECC correction, line retirement to a spare pool —
// before giving up on a line. The package provides the per-shard fault
// state (Map), the per-line stuck view schemes and ECC consume
// (LineStuck), the interleaved BCH corrector (ECC), and the mergeable
// Stats the replay engine folds into its metrics.
//
// Everything here is deterministic by construction: endurance thresholds
// are drawn by hashing (seed, line, cell, incarnation) rather than by
// consuming a stream, so the draw order — which depends on worker
// scheduling — never affects the values, and a replay's fault history is
// bit-identical for every worker count.
package fault

import (
	"sort"

	"wlcrc/internal/pcm"
	"wlcrc/internal/prng"
)

// defaultCellEndurance mirrors wear.DefaultCellEndurance (1e7 program
// cycles, a representative MLC PCM figure). Kept as a local constant so
// the fault package stays import-cycle-free with internal/wear, whose
// external tests exercise schemes that depend on this package.
const defaultCellEndurance = 1e7

// StuckCell names one stuck-at fault: cell Cell of line Addr reads back
// State regardless of what is programmed. Used to pre-seed manufacturing
// defects into a Map.
type StuckCell struct {
	Addr  uint64
	Cell  int
	State pcm.State
}

// Config enables and parameterizes the stuck-at fault model.
type Config struct {
	// Enabled turns the fault model on. All other fields are ignored
	// (and the replay hot path carries no fault overhead) when false.
	Enabled bool

	// CellEndurance is the mean program-cycle endurance of a cell: once
	// a cell's wear count crosses its drawn threshold it sticks at its
	// last-programmed state. 0 means defaultCellEndurance (1e7).
	CellEndurance uint32
	// EnduranceSpread is the relative half-width of the per-cell
	// threshold draw: thresholds are uniform over
	// [E*(1-spread), E*(1+spread)]. 0 gives every cell exactly
	// CellEndurance cycles.
	EnduranceSpread float64

	// Static pre-seeds stuck-at faults (manufacturing defects) before
	// any write replays. Cells outside a scheme's cell range are
	// ignored for that scheme.
	Static []StuckCell

	// ECCBits is the per-line correctable-bit budget (ECP-style). It is
	// rounded up to whole interleaved ways of the t=2 BCH code, so the
	// effective budget is the next even number. 0 means 4.
	ECCBits int

	// SpareLines is each shard's spare-line pool: lines whose stuck
	// cells exceed the ECC budget are retired and remapped to a spare
	// until the pool is empty. 0 means 16.
	SpareLines int

	// MaxRetiredFraction is the graceful-degradation threshold: when a
	// scheme's retired lines exceed this fraction of its touched lines,
	// the run ends with a DegradedError. 0 means 0.25.
	MaxRetiredFraction float64
}

// WithDefaults resolves zero fields to their documented defaults.
func (c Config) WithDefaults() Config {
	if c.CellEndurance == 0 {
		c.CellEndurance = uint32(defaultCellEndurance)
	}
	if c.ECCBits <= 0 {
		c.ECCBits = 4
	}
	if c.SpareLines <= 0 {
		c.SpareLines = 16
	}
	if c.MaxRetiredFraction <= 0 {
		c.MaxRetiredFraction = 0.25
	}
	return c
}

// Stats is the mergeable fault/repair digest of one shard (or, after
// merging, one scheme). All counters are monotonic adds except
// FirstRetireSeq, which merges by minimum.
type Stats struct {
	// StuckCells counts cells that ever became stuck, from any source;
	// WearStuck and InjectedStuck are the wear-onset and VnR-injected
	// subsets (the remainder is static pre-seeded faults).
	StuckCells    uint64
	WearStuck     uint64
	InjectedStuck uint64

	// LinesTouched counts distinct lines written under the fault model —
	// the denominator of the retired-line fraction.
	LinesTouched uint64

	// Detected counts writes whose write-verify found at least one
	// stuck cell disagreeing with the intended encode.
	Detected uint64
	// Retries / RetriedOK count stuck-aware re-encode attempts and the
	// ones that found a candidate matching every stuck cell.
	Retries   uint64
	RetriedOK uint64
	// CorrectedWrites / CorrectedBits count writes salvaged by ECC and
	// the total bits the code corrected for them.
	CorrectedWrites uint64
	CorrectedBits   uint64

	// RetiredLines counts lines remapped to the spare pool; RemapHits
	// counts writes that landed on a remapped line (including the
	// retiring write's own replay onto the spare).
	RetiredLines uint64
	RemapHits    uint64

	// Uncorrectable counts writes whose stuck cells exceeded the ECC
	// budget with no spare line left (or VnR residuals beyond the
	// budget) — reads of such lines return corrupted data.
	Uncorrectable uint64

	// FirstRetireSeq is the 1-based global trace sequence number of the
	// first line retirement (0 = none): the shard's writes-to-first-
	// retirement lifetime figure.
	FirstRetireSeq uint64
}

// Merge folds another shard's stats into s.
func (s *Stats) Merge(o Stats) {
	s.StuckCells += o.StuckCells
	s.WearStuck += o.WearStuck
	s.InjectedStuck += o.InjectedStuck
	s.LinesTouched += o.LinesTouched
	s.Detected += o.Detected
	s.Retries += o.Retries
	s.RetriedOK += o.RetriedOK
	s.CorrectedWrites += o.CorrectedWrites
	s.CorrectedBits += o.CorrectedBits
	s.RetiredLines += o.RetiredLines
	s.RemapHits += o.RemapHits
	s.Uncorrectable += o.Uncorrectable
	if o.FirstRetireSeq != 0 && (s.FirstRetireSeq == 0 || o.FirstRetireSeq < s.FirstRetireSeq) {
		s.FirstRetireSeq = o.FirstRetireSeq
	}
}

// RetiredFraction returns retired lines over touched lines (0 when
// nothing was written).
func (s Stats) RetiredFraction() float64 {
	if s.LinesTouched == 0 {
		return 0
	}
	return float64(s.RetiredLines) / float64(s.LinesTouched)
}

// LineStuck is one line's stuck-cell view: States[c] holds cell c's
// frozen state plus one, or 0 when the cell is healthy. The encoding
// keeps the zero value meaningful and the whole view scannable without
// a second presence structure.
type LineStuck struct {
	States []uint8
	N      int
}

// StateOf returns cell c's stuck state, if it is stuck.
func (ls *LineStuck) StateOf(c int) (pcm.State, bool) {
	if v := ls.States[c]; v != 0 {
		return pcm.State(v - 1), true
	}
	return 0, false
}

// set freezes cell c at st; it reports whether the cell was healthy
// before (false = already stuck, state unchanged: a stuck cell never
// re-freezes).
func (ls *LineStuck) set(c int, st pcm.State) bool {
	if ls.States[c] != 0 {
		return false
	}
	ls.States[c] = uint8(st) + 1
	ls.N++
	return true
}

// MismatchCount returns how many stuck cells disagree with the intended
// cell vector — the write-verify result against this stuck map.
func (ls *LineStuck) MismatchCount(cells []pcm.State) int {
	n := 0
	for c, v := range ls.States {
		if v != 0 && pcm.State(v-1) != cells[c] {
			n++
		}
	}
	return n
}

// Overlay forces every stuck cell's frozen state into cells, turning an
// intended vector into the physically stored one.
func (ls *LineStuck) Overlay(cells []pcm.State) {
	for c, v := range ls.States {
		if v != 0 {
			cells[c] = pcm.State(v - 1)
		}
	}
}

// WordPlanes returns the stuck cells of one 32-cell word as SWAR bit
// planes: mask has a bit per stuck cell, lo/hi carry the frozen state's
// low/high bit on those positions — the operand shape the coset tables'
// stuck-aware candidate pricing consumes. Cells beyond the view's
// length are healthy.
func (ls *LineStuck) WordPlanes(w int) (mask, lo, hi uint64) {
	base := w * 32
	if base >= len(ls.States) {
		return 0, 0, 0
	}
	end := base + 32
	if end > len(ls.States) {
		end = len(ls.States)
	}
	for c := base; c < end; c++ {
		v := ls.States[c]
		if v == 0 {
			continue
		}
		bit := uint64(1) << uint(c-base)
		mask |= bit
		st := uint64(v - 1)
		lo |= (st & 1) * bit
		hi |= (st >> 1) * bit
	}
	return mask, lo, hi
}

// lineRec is one line's fault state inside a Map.
type lineRec struct {
	LineStuck
	// thr holds the absolute per-cell endurance thresholds of the
	// line's current incarnation, drawn lazily on first write.
	thr []uint32
	// gen counts retirements: each remap re-draws thresholds with a new
	// salt so the spare line gets fresh endurance.
	gen uint32
	// remapped marks lines whose traffic now lands on a spare.
	remapped bool
	// touched marks lines that have been written at least once.
	touched bool
	// parity holds the interleaved ECC parity of the last write's
	// intended content (ways * bch.ParityBits bits), maintained for
	// every write to a line with stuck cells so reads can correct the
	// physically stored states back to the intended ones.
	parity []uint8
}

// Map is one shard's stuck-at fault state: per-line stuck cells,
// endurance thresholds, the spare-line pool, and the shard's fault
// stats. Like the shard that owns it, a Map is single-goroutine.
type Map struct {
	cfg   Config
	seed  uint64
	cells int
	ecc   *ECC
	lines map[uint64]*lineRec
	// static remembers the seeded manufacturing defects so Reset can
	// replay them.
	static []StuckCell
	spares int

	// Stats is the shard's live fault digest. The repair pipeline in
	// the owning shard updates the recourse counters directly.
	Stats Stats
}

// NewMap builds a fault map for lines of cellsPerLine cells. seed
// decorrelates this shard's threshold draws from every other shard's;
// ecc may be shared across shards (it is read-only after construction).
// cfg should already have defaults resolved.
func NewMap(cfg Config, seed uint64, cellsPerLine int, ecc *ECC) *Map {
	cfg = cfg.WithDefaults()
	return &Map{
		cfg:    cfg,
		seed:   seed,
		cells:  cellsPerLine,
		ecc:    ecc,
		lines:  make(map[uint64]*lineRec),
		spares: cfg.SpareLines,
	}
}

// ECC returns the corrector the map was built with.
func (m *Map) ECC() *ECC { return m.ecc }

// rec returns addr's fault record, creating it on first use.
func (m *Map) rec(addr uint64) *lineRec {
	r, ok := m.lines[addr]
	if !ok {
		r = &lineRec{LineStuck: LineStuck{States: make([]uint8, m.cells)}}
		m.lines[addr] = r
	}
	return r
}

// SeedStatic pre-seeds one manufacturing defect. Cells outside the
// map's cell range are ignored (schemes differ in total cell count);
// seeding the same cell twice keeps the first state.
func (m *Map) SeedStatic(sc StuckCell) {
	if sc.Cell < 0 || sc.Cell >= m.cells {
		return
	}
	if m.rec(sc.Addr).set(sc.Cell, sc.State) {
		m.Stats.StuckCells++
		m.static = append(m.static, sc)
	}
}

// Stuck returns addr's stuck-cell view, or nil when every cell of the
// line is healthy.
func (m *Map) Stuck(addr uint64) *LineStuck {
	if r, ok := m.lines[addr]; ok && r.N > 0 {
		return &r.LineStuck
	}
	return nil
}

// InjectStuck freezes one cell at st (the VnR-residual feed): a
// disturbance error that survived the restore iteration cap is treated
// as a cell stuck at the disturbed SET state. It reports whether the
// cell was newly frozen.
func (m *Map) InjectStuck(addr uint64, cell int, st pcm.State) bool {
	if cell < 0 || cell >= m.cells {
		return false
	}
	if !m.rec(addr).set(cell, st) {
		return false
	}
	m.Stats.StuckCells++
	m.Stats.InjectedStuck++
	return true
}

// drawThreshold returns the endurance threshold of (addr, cell) in
// incarnation gen — a pure hash of the coordinates, so the value never
// depends on the order shards or workers evaluate it.
func (m *Map) drawThreshold(addr uint64, cell int, gen uint32) uint32 {
	e := m.cfg.CellEndurance
	sp := m.cfg.EnduranceSpread
	if sp <= 0 {
		return e
	}
	h := prng.NewSplitMix64(m.seed ^ (addr*0x9e3779b97f4a7c15 + uint64(cell)<<32 + uint64(gen) + 1)).Uint64()
	lo := uint32(float64(e) * (1 - sp))
	hi := uint32(float64(e) * (1 + sp))
	if hi <= lo {
		return e
	}
	return lo + uint32(h%uint64(hi-lo+1))
}

// OnWrite advances the wear-driven fault model for one settled write:
// counts remap-pool hits, marks the line touched, and freezes every
// cell whose program count crossed its endurance threshold at the state
// this write just programmed (its last-programmed state — the write
// succeeded, the cell dies holding it). counts is the line's live
// per-cell wear from the shard's recorder, already including this
// write; nil disables wear onset (no recorder).
func (m *Map) OnWrite(addr uint64, changed []bool, states []pcm.State, counts []uint32) {
	r := m.rec(addr)
	if !r.touched {
		r.touched = true
		m.Stats.LinesTouched++
	}
	if r.remapped {
		m.Stats.RemapHits++
	}
	if counts == nil {
		return
	}
	if r.thr == nil {
		r.thr = make([]uint32, m.cells)
		for c := range r.thr {
			r.thr[c] = m.drawThreshold(addr, c, r.gen)
		}
	}
	for c, ch := range changed {
		if ch && counts[c] >= r.thr[c] && r.set(c, states[c]) {
			m.Stats.StuckCells++
			m.Stats.WearStuck++
		}
	}
}

// Retire remaps addr to a spare line: its stuck cells are dropped (the
// spare is healthy), its endurance thresholds re-drawn above the wear
// the address has already accumulated (the recorder keeps counting the
// address; the spare's cells start fresh), and the spare pool shrinks
// by one. It reports false — leaving the line as it was — when the pool
// is empty. seq is the retiring write's global trace sequence number.
func (m *Map) Retire(addr uint64, counts []uint32, seq uint64) bool {
	if m.spares == 0 {
		return false
	}
	m.spares--
	r := m.rec(addr)
	for c := range r.States {
		r.States[c] = 0
	}
	r.N = 0
	r.gen++
	r.remapped = true
	r.parity = r.parity[:0]
	if r.thr == nil {
		r.thr = make([]uint32, m.cells)
	}
	for c := range r.thr {
		base := uint32(0)
		if counts != nil {
			base = counts[c]
		}
		r.thr[c] = base + m.drawThreshold(addr, c, r.gen)
	}
	m.Stats.RetiredLines++
	if m.Stats.FirstRetireSeq == 0 || seq+1 < m.Stats.FirstRetireSeq {
		m.Stats.FirstRetireSeq = seq + 1
	}
	return true
}

// SpareLinesLeft returns the remaining spare-line pool.
func (m *Map) SpareLinesLeft() int { return m.spares }

// Correct asks the ECC whether the stuck cells of ls can be corrected
// for the intended vector, returning the corrected bit count. It is the
// write-path classification; StoreParity persists the parity a read
// needs.
func (m *Map) Correct(intended []pcm.State, ls *LineStuck, sc *ECCScratch) (bits int, ok bool) {
	return m.ecc.Correct(intended, ls, sc)
}

// StoreParity records the ECC parity of addr's intended content,
// overwriting the previous write's. Called for every write to a line
// with stuck cells, so Recover always corrects against the latest
// content.
func (m *Map) StoreParity(addr uint64, intended []pcm.State, sc *ECCScratch) {
	r := m.rec(addr)
	need := m.ecc.ParityLen()
	if cap(r.parity) < need {
		r.parity = make([]uint8, need)
	}
	r.parity = r.parity[:need]
	m.ecc.ParityInto(intended, r.parity, sc)
}

// Recover reconstructs the intended content of addr from its physically
// stored states: healthy lines pass through, stuck lines are corrected
// way-by-way against the stored parity into dst. ok=false means the
// line is uncorrectable (stuck beyond the ECC budget and never
// retired) — deterministically so, for every worker count.
func (m *Map) Recover(addr uint64, phys, dst []pcm.State, sc *ECCScratch) (cells []pcm.State, ok bool) {
	r, present := m.lines[addr]
	if !present || r.N == 0 || len(r.parity) == 0 {
		return phys, true
	}
	copy(dst, phys)
	if !m.ecc.Recover(dst, r.parity, sc) {
		return nil, false
	}
	return dst, true
}

// Retired returns the sorted addresses of every retired line.
func (m *Map) Retired() []uint64 {
	var out []uint64
	for addr, r := range m.lines {
		if r.remapped {
			out = append(out, addr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ResetStats clears the flow counters (detections, retries,
// corrections, remap hits, uncorrectables) but keeps the structural
// state counters — stuck cells, retired lines, touched lines, the
// first-retirement mark — which describe accumulated array state rather
// than per-window activity. Mirrors the simulator's metrics reset after
// warm-up.
func (m *Map) ResetStats() {
	s := m.Stats
	m.Stats = Stats{
		StuckCells:     s.StuckCells,
		WearStuck:      s.WearStuck,
		InjectedStuck:  s.InjectedStuck,
		LinesTouched:   s.LinesTouched,
		RetiredLines:   s.RetiredLines,
		FirstRetireSeq: s.FirstRetireSeq,
	}
}

// Reset drops all fault state, restores the spare pool and re-seeds the
// static defects.
func (m *Map) Reset() {
	m.lines = make(map[uint64]*lineRec)
	m.spares = m.cfg.SpareLines
	m.Stats = Stats{}
	static := m.static
	m.static = nil
	for _, sc := range static {
		m.SeedStatic(sc)
	}
}

// RandomStatic draws n distinct manufacturing defects over line
// addresses [0, maxAddr) and the universally-valid data-cell range — a
// deterministic helper for CLI flags and tests. States are drawn over
// all four MLC states.
func RandomStatic(seed uint64, n int, maxAddr uint64) []StuckCell {
	if n <= 0 || maxAddr == 0 {
		return nil
	}
	sm := prng.NewSplitMix64(seed ^ 0xfa0175f01d4a5c3b)
	out := make([]StuckCell, 0, n)
	seen := make(map[[2]uint64]bool, n)
	for len(out) < n {
		a := sm.Uint64() % maxAddr
		c := int(sm.Uint64() % 256)
		if seen[[2]uint64{a, uint64(c)}] {
			continue
		}
		seen[[2]uint64{a, uint64(c)}] = true
		out = append(out, StuckCell{Addr: a, Cell: c, State: pcm.State(sm.Uint64() % 4)})
	}
	return out
}
