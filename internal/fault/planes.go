package fault

import (
	"math/bits"

	"wlcrc/internal/pcm"
)

// This file is the fault model's plane-resident surface: the replay
// shards store lines as (lo, hi) bit-plane pairs (see internal/sim's
// arena), and the write-path checks that run on every request to a
// stuck line — mismatch detection, the stored-state overlay, and the
// wear-onset scan — operate on that layout directly. The scalar
// []pcm.State methods in fault.go remain the reference implementations;
// the repair recourses themselves (retry, ECC, retirement) still run on
// materialized cells because they are rare and re-enter the scheme
// codecs.
//
// Plane layout convention (shared with internal/coset): planes[2w] and
// planes[2w+1] hold the low and high state bits of cells [32w, 32w+32),
// cell state s contributing bit s&1 to the low plane and s>>1 to the
// high plane.

// planeState reads cell c's state out of a plane-resident line.
func planeState(planes []uint64, c int) pcm.State {
	w, b := c>>5, uint(c&31)
	return pcm.State((planes[2*w]>>b)&1 | ((planes[2*w+1]>>b)&1)<<1)
}

// MismatchCountPlanes is MismatchCount over a plane-resident intended
// vector: how many stuck cells disagree with what the write wants to
// store.
func (ls *LineStuck) MismatchCountPlanes(planes []uint64) int {
	n := 0
	seen := 0
	for c, v := range ls.States {
		if v == 0 {
			continue
		}
		if pcm.State(v-1) != planeState(planes, c) {
			n++
		}
		seen++
		if seen == ls.N {
			break
		}
	}
	return n
}

// OverlayPlanes forces every stuck cell's frozen state into the
// plane-resident line, turning an intended vector into the physically
// stored one. The plane counterpart of Overlay.
func (ls *LineStuck) OverlayPlanes(planes []uint64) {
	seen := 0
	for c, v := range ls.States {
		if v == 0 {
			continue
		}
		st := uint64(v - 1)
		w, b := c>>5, uint(c&31)
		planes[2*w] = planes[2*w]&^(1<<b) | (st&1)<<b
		planes[2*w+1] = planes[2*w+1]&^(1<<b) | (st>>1)<<b
		seen++
		if seen == ls.N {
			break
		}
	}
}

// OnWriteMasks is OnWrite fed from the plane-resident settle path:
// masks are the per-word changed-cell bit masks the energy diff already
// produced, and planes is the settled intended content the newly dead
// cells freeze at. Cells are visited in ascending index order, exactly
// like the scalar changed[] scan, so the stats and stuck states are
// bit-identical between the two paths.
func (m *Map) OnWriteMasks(addr uint64, masks, planes []uint64, counts []uint32) {
	r := m.rec(addr)
	if !r.touched {
		r.touched = true
		m.Stats.LinesTouched++
	}
	if r.remapped {
		m.Stats.RemapHits++
	}
	if counts == nil {
		return
	}
	if r.thr == nil {
		r.thr = make([]uint32, m.cells)
		for c := range r.thr {
			r.thr[c] = m.drawThreshold(addr, c, r.gen)
		}
	}
	for w, mk := range masks {
		for ; mk != 0; mk &= mk - 1 {
			c := w*32 + bits.TrailingZeros64(mk)
			if c >= m.cells {
				break
			}
			if counts[c] >= r.thr[c] && r.set(c, planeState(planes, c)) {
				m.Stats.StuckCells++
				m.Stats.WearStuck++
			}
		}
	}
}
