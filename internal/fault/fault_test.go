package fault

import (
	"reflect"
	"testing"

	"wlcrc/internal/pcm"
)

func TestConfigWithDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.CellEndurance != uint32(defaultCellEndurance) {
		t.Errorf("CellEndurance = %d, want %d", c.CellEndurance, uint32(defaultCellEndurance))
	}
	if c.ECCBits != 4 || c.SpareLines != 16 || c.MaxRetiredFraction != 0.25 {
		t.Errorf("defaults = %+v", c)
	}
	// Explicit values survive.
	c = Config{CellEndurance: 7, ECCBits: 2, SpareLines: 3, MaxRetiredFraction: 0.5}.WithDefaults()
	if c.CellEndurance != 7 || c.ECCBits != 2 || c.SpareLines != 3 || c.MaxRetiredFraction != 0.5 {
		t.Errorf("explicit values overridden: %+v", c)
	}
}

func TestStatsMerge(t *testing.T) {
	a := Stats{StuckCells: 1, Detected: 2, RetiredLines: 1, FirstRetireSeq: 90, LinesTouched: 10}
	b := Stats{StuckCells: 2, Detected: 3, RetiredLines: 1, FirstRetireSeq: 40, LinesTouched: 5}
	a.Merge(b)
	if a.StuckCells != 3 || a.Detected != 5 || a.RetiredLines != 2 || a.LinesTouched != 15 {
		t.Errorf("merged = %+v", a)
	}
	if a.FirstRetireSeq != 40 {
		t.Errorf("FirstRetireSeq = %d, want min-nonzero 40", a.FirstRetireSeq)
	}
	// Zero means "never retired" and must not win the minimum.
	c := Stats{FirstRetireSeq: 7}
	c.Merge(Stats{})
	if c.FirstRetireSeq != 7 {
		t.Errorf("merge with zero clobbered FirstRetireSeq: %d", c.FirstRetireSeq)
	}
	if got := a.RetiredFraction(); got != 2.0/15.0 {
		t.Errorf("RetiredFraction = %v", got)
	}
	if (Stats{}).RetiredFraction() != 0 {
		t.Error("empty RetiredFraction != 0")
	}
}

func TestLineStuckView(t *testing.T) {
	ls := LineStuck{States: make([]uint8, 64)}
	if !ls.set(3, pcm.S4) || !ls.set(40, pcm.S1) {
		t.Fatal("set on healthy cells failed")
	}
	if ls.set(3, pcm.S2) {
		t.Error("stuck cell re-froze")
	}
	if st, ok := ls.StateOf(3); !ok || st != pcm.S4 {
		t.Errorf("StateOf(3) = %v, %v", st, ok)
	}
	if _, ok := ls.StateOf(5); ok {
		t.Error("healthy cell reported stuck")
	}
	if ls.N != 2 {
		t.Errorf("N = %d, want 2", ls.N)
	}

	cells := make([]pcm.State, 64)
	cells[3] = pcm.S4 // agrees
	cells[40] = pcm.S3
	if n := ls.MismatchCount(cells); n != 1 {
		t.Errorf("MismatchCount = %d, want 1", n)
	}
	ls.Overlay(cells)
	if cells[3] != pcm.S4 || cells[40] != pcm.S1 {
		t.Errorf("Overlay left %v %v", cells[3], cells[40])
	}
	if n := ls.MismatchCount(cells); n != 0 {
		t.Errorf("MismatchCount after Overlay = %d", n)
	}

	mask, lo, hi := ls.WordPlanes(0)
	if mask != 1<<3 || lo != (uint64(pcm.S4)&1)<<3 || hi != (uint64(pcm.S4)>>1)<<3 {
		t.Errorf("WordPlanes(0) = %#x %#x %#x", mask, lo, hi)
	}
	mask, lo, hi = ls.WordPlanes(1)
	if mask != 1<<8 { // cell 40 = word 1, bit 8; S1=0 so both planes clear
		t.Errorf("WordPlanes(1) mask = %#x", mask)
	}
	if lo != 0 || hi != 0 {
		t.Errorf("WordPlanes(1) planes = %#x %#x, want 0 0 for S1", lo, hi)
	}
	if mask, _, _ := ls.WordPlanes(9); mask != 0 {
		t.Error("out-of-range word not healthy")
	}
}

func TestDrawThresholdDeterministicAndBounded(t *testing.T) {
	cfg := Config{Enabled: true, CellEndurance: 1000, EnduranceSpread: 0.3}.WithDefaults()
	m := NewMap(cfg, 99, 64, NewECC(4))
	seenLo, seenHi := false, false
	for addr := uint64(0); addr < 64; addr++ {
		for c := 0; c < 64; c++ {
			v := m.drawThreshold(addr, c, 0)
			if v != m.drawThreshold(addr, c, 0) {
				t.Fatal("draw not deterministic")
			}
			if v < 700 || v > 1300 {
				t.Fatalf("threshold %d outside [700,1300]", v)
			}
			if v < 850 {
				seenLo = true
			}
			if v > 1150 {
				seenHi = true
			}
			if m.drawThreshold(addr, c, 1) == v && m.drawThreshold(addr, c, 2) == v {
				t.Fatalf("generations collide at (%d,%d)", addr, c)
			}
		}
	}
	if !seenLo || !seenHi {
		t.Error("draws do not spread over the configured interval")
	}
	// Zero spread pins every cell at the mean.
	m0 := NewMap(Config{Enabled: true, CellEndurance: 5}.WithDefaults(), 1, 8, NewECC(4))
	if m0.drawThreshold(3, 3, 0) != 5 {
		t.Error("zero spread not exact")
	}
	// A different map seed decorrelates the draws.
	m2 := NewMap(cfg, 100, 64, NewECC(4))
	same := 0
	for c := 0; c < 64; c++ {
		if m.drawThreshold(0, c, 0) == m2.drawThreshold(0, c, 0) {
			same++
		}
	}
	if same > 8 {
		t.Errorf("%d/64 draws identical across seeds", same)
	}
}

func TestOnWriteWearOnset(t *testing.T) {
	cfg := Config{Enabled: true, CellEndurance: 3, SpareLines: 2}.WithDefaults()
	m := NewMap(cfg, 7, 4, NewECC(2))
	changed := []bool{true, true, false, false}
	states := []pcm.State{pcm.S3, pcm.S2, pcm.S1, pcm.S1}
	counts := []uint32{2, 3, 9, 9} // cell 1 crosses; cell 2 would but was not programmed

	m.OnWrite(5, changed, states, counts)
	if m.Stats.LinesTouched != 1 || m.Stats.WearStuck != 1 || m.Stats.StuckCells != 1 {
		t.Fatalf("stats after onset: %+v", m.Stats)
	}
	ls := m.Stuck(5)
	if ls == nil {
		t.Fatal("no stuck view after onset")
	}
	if st, ok := ls.StateOf(1); !ok || st != pcm.S2 {
		t.Errorf("cell 1 stuck at %v, %v; want last-programmed S2", st, ok)
	}
	if _, ok := ls.StateOf(2); ok {
		t.Error("unprogrammed cell froze")
	}
	// Re-writing the same line neither re-freezes nor re-counts.
	m.OnWrite(5, changed, []pcm.State{pcm.S1, pcm.S4, pcm.S1, pcm.S1}, []uint32{3, 4, 9, 9})
	if m.Stats.LinesTouched != 1 {
		t.Errorf("LinesTouched double-counted: %d", m.Stats.LinesTouched)
	}
	if st, _ := ls.StateOf(1); st != pcm.S2 {
		t.Errorf("stuck cell re-froze to %v", st)
	}
	if m.Stats.WearStuck != 2 { // cell 0 crossed (3 >= 3) this time
		t.Errorf("WearStuck = %d, want 2", m.Stats.WearStuck)
	}
	// nil counts (no wear recorder) disables onset but still counts lines.
	m.OnWrite(6, changed, states, nil)
	if m.Stuck(6) != nil || m.Stats.LinesTouched != 2 {
		t.Error("nil counts path wrong")
	}
}

func TestRetireAndRemap(t *testing.T) {
	cfg := Config{Enabled: true, CellEndurance: 10, EnduranceSpread: 0.5, SpareLines: 1}.WithDefaults()
	m := NewMap(cfg, 11, 4, NewECC(2))
	m.SeedStatic(StuckCell{Addr: 9, Cell: 0, State: pcm.S3})
	m.SeedStatic(StuckCell{Addr: 9, Cell: 1, State: pcm.S4})
	counts := []uint32{20, 20, 20, 20}

	if !m.Retire(9, counts, 99) {
		t.Fatal("retire with a spare available failed")
	}
	if m.Stuck(9) != nil {
		t.Error("spare line kept the stuck cells")
	}
	if m.SpareLinesLeft() != 0 {
		t.Errorf("spares left = %d", m.SpareLinesLeft())
	}
	if m.Stats.RetiredLines != 1 || m.Stats.FirstRetireSeq != 100 {
		t.Errorf("stats = %+v, want RetiredLines 1, FirstRetireSeq 100 (1-based)", m.Stats)
	}
	// Redrawn thresholds sit above the wear the address already has.
	r := m.lines[9]
	for c, thr := range r.thr {
		if thr <= counts[c] {
			t.Errorf("cell %d threshold %d not above accumulated wear %d", c, thr, counts[c])
		}
	}
	if !reflect.DeepEqual(m.Retired(), []uint64{9}) {
		t.Errorf("Retired() = %v", m.Retired())
	}
	// OnWrite to a remapped line counts remap traffic.
	m.OnWrite(9, []bool{true, false, false, false}, []pcm.State{0, 0, 0, 0}, counts)
	if m.Stats.RemapHits != 1 {
		t.Errorf("RemapHits = %d", m.Stats.RemapHits)
	}
	// Pool exhausted: retire refuses and leaves state alone.
	m.InjectStuck(3, 2, pcm.S2)
	if m.Retire(3, counts, 5) {
		t.Error("retire succeeded with empty pool")
	}
	if m.Stuck(3) == nil || m.Stats.RetiredLines != 1 {
		t.Error("failed retire mutated state")
	}
	// An earlier retirement would have lowered FirstRetireSeq; a later
	// one must not.
	m.Stats.FirstRetireSeq = 3
	m.spares = 1
	m.Retire(3, counts, 50)
	if m.Stats.FirstRetireSeq != 3 {
		t.Errorf("later retire moved FirstRetireSeq to %d", m.Stats.FirstRetireSeq)
	}
}

func TestECCCorrectAndRecover(t *testing.T) {
	ecc := NewECC(4) // 2 ways, 2 bits each
	if ecc.Ways() != 2 || ecc.BudgetBits() != 4 {
		t.Fatalf("ways=%d budget=%d", ecc.Ways(), ecc.BudgetBits())
	}
	var sc ECCScratch
	n := 64
	cells := make([]pcm.State, n)
	for i := range cells {
		cells[i] = pcm.State(uint(i*7) % 4)
	}

	// One stuck cell per way, disagreeing: 2 flipped bits per way at
	// most, within budget.
	ls := &LineStuck{States: make([]uint8, n)}
	ls.set(0, cells[0]^3) // way 0, both bits differ
	ls.set(5, cells[5]^3) // way 1
	bits, ok := ecc.Correct(cells, ls, &sc)
	if !ok || bits != 4 {
		t.Fatalf("Correct = %d, %v; want 4 bits over 2 ways", bits, ok)
	}

	// Round-trip through stored parity: physical = intended + overlay.
	parity := make([]uint8, ecc.ParityLen())
	ecc.ParityInto(cells, parity, &sc)
	phys := make([]pcm.State, n)
	copy(phys, cells)
	ls.Overlay(phys)
	if !ecc.Recover(phys, parity, &sc) {
		t.Fatal("Recover failed within budget")
	}
	if !reflect.DeepEqual(phys, cells) {
		t.Fatal("Recover did not reconstruct the intended states")
	}

	// Three stuck cells in one way (6 flipped bits) exceed the way's
	// t=2 budget.
	ls2 := &LineStuck{States: make([]uint8, n)}
	for _, c := range []int{0, 2, 4} { // all way 0
		ls2.set(c, cells[c]^3)
	}
	if _, ok := ecc.Correct(cells, ls2, &sc); ok {
		t.Fatal("Correct accepted 6 flipped bits in one way")
	}
	// A stuck cell that agrees with the intended state costs nothing.
	ls3 := &LineStuck{States: make([]uint8, n)}
	ls3.set(10, cells[10])
	if bits, ok := ecc.Correct(cells, ls3, &sc); !ok || bits != 0 {
		t.Errorf("agreeing stuck cell: %d, %v", bits, ok)
	}
}

func TestMapRecoverPassthrough(t *testing.T) {
	m := NewMap(Config{Enabled: true}.WithDefaults(), 1, 8, NewECC(4))
	var sc ECCScratch
	phys := []pcm.State{1, 2, 3, 0, 1, 2, 3, 0}
	dst := make([]pcm.State, 8)
	got, ok := m.Recover(77, phys, dst, &sc)
	if !ok || &got[0] != &phys[0] {
		t.Error("healthy line did not pass through")
	}
}

func TestResetStatsKeepsStructure(t *testing.T) {
	m := NewMap(Config{Enabled: true, SpareLines: 4}.WithDefaults(), 3, 8, NewECC(4))
	m.SeedStatic(StuckCell{Addr: 1, Cell: 2, State: pcm.S2})
	m.Stats.Detected = 5
	m.Stats.RemapHits = 2
	m.Stats.LinesTouched = 3
	m.Stats.FirstRetireSeq = 9
	m.ResetStats()
	if m.Stats.Detected != 0 || m.Stats.RemapHits != 0 {
		t.Errorf("flow counters survived ResetStats: %+v", m.Stats)
	}
	if m.Stats.StuckCells != 1 || m.Stats.LinesTouched != 3 || m.Stats.FirstRetireSeq != 9 {
		t.Errorf("structural counters cleared: %+v", m.Stats)
	}

	m.Retire(1, nil, 0)
	m.Reset()
	if m.SpareLinesLeft() != 4 || m.Stats.RetiredLines != 0 {
		t.Errorf("Reset did not restore pool: %d spares, %+v", m.SpareLinesLeft(), m.Stats)
	}
	if m.Stuck(1) == nil {
		t.Error("Reset dropped the static defect")
	}
	if m.Stats.StuckCells != 1 {
		t.Errorf("re-seeded stats = %+v", m.Stats)
	}
}

func TestRandomStatic(t *testing.T) {
	got := RandomStatic(5, 40, 96)
	if len(got) != 40 {
		t.Fatalf("len = %d", len(got))
	}
	seen := map[[2]uint64]bool{}
	for _, sc := range got {
		if sc.Addr >= 96 || sc.Cell < 0 || sc.Cell >= 256 || sc.State > pcm.S4 {
			t.Fatalf("out-of-range defect %+v", sc)
		}
		k := [2]uint64{sc.Addr, uint64(sc.Cell)}
		if seen[k] {
			t.Fatalf("duplicate defect %+v", sc)
		}
		seen[k] = true
	}
	if !reflect.DeepEqual(got, RandomStatic(5, 40, 96)) {
		t.Error("RandomStatic not deterministic")
	}
	if RandomStatic(5, 0, 96) != nil || RandomStatic(5, 4, 0) != nil {
		t.Error("degenerate inputs not nil")
	}
}
