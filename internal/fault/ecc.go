package fault

import (
	"wlcrc/internal/bch"
	"wlcrc/internal/pcm"
)

// ECC is the per-line error corrector of the repair pipeline: the t=2
// BCH code from internal/bch, interleaved over `ways` independent
// codewords so the per-line correctable budget is 2*ways bits instead
// of 2. Cell c's two MLC bits belong to way c%ways — interleaving by
// cell keeps both bits of a stuck cell in one codeword, so a stuck cell
// costs at most two of its way's budget and the configured budget is a
// true worst-case bit bound.
//
// An ECC is read-only after construction and may be shared by every
// shard of an engine; per-call scratch lives in the caller's
// ECCScratch.
type ECC struct {
	code *bch.Code
	ways int
}

// NewECC builds a corrector with at least budgetBits of per-line
// correction (rounded up to whole 2-bit ways; 0 or negative means 4).
func NewECC(budgetBits int) *ECC {
	if budgetBits <= 0 {
		budgetBits = 4
	}
	return &ECC{code: bch.New(), ways: (budgetBits + 1) / 2}
}

// Ways returns the number of interleaved codewords.
func (e *ECC) Ways() int { return e.ways }

// BudgetBits returns the per-line correctable-bit budget, 2 per way.
func (e *ECC) BudgetBits() int { return 2 * e.ways }

// ParityLen returns the per-line parity size in bits: one bch.ParityBits
// block per way.
func (e *ECC) ParityLen() int { return e.ways * bch.ParityBits }

// ECCScratch holds one caller's reusable correction buffers.
type ECCScratch struct {
	msg []uint8 // one way's intended message bits
	cw  []uint8 // one way's codeword: parity then stored message bits
}

// grow sizes the scratch for lines of n cells split over ways.
func (sc *ECCScratch) grow(n, ways int) {
	need := 2 * ((n + ways - 1) / ways)
	if cap(sc.msg) < need {
		sc.msg = make([]uint8, need)
		sc.cw = make([]uint8, bch.ParityBits+need)
	}
}

// wayMsg writes the message bits of one way into dst and returns the
// used prefix: for each cell c with c%ways == w in ascending order, the
// cell's low then high state bit. stuck, when non-nil, overrides cell
// states with their frozen values — the physically stored view.
func (e *ECC) wayMsg(dst []uint8, cells []pcm.State, w int, stuck *LineStuck) []uint8 {
	k := 0
	for c := w; c < len(cells); c += e.ways {
		st := cells[c]
		if stuck != nil {
			if v := stuck.States[c]; v != 0 {
				st = pcm.State(v - 1)
			}
		}
		dst[k] = uint8(st) & 1
		dst[k+1] = uint8(st) >> 1
		k += 2
	}
	return dst[:k]
}

// Correct reports whether a line whose intended content is cells but
// whose stuck cells freeze at the states in ls decodes back to the
// intended content, and how many bits the code corrects doing so. This
// is the write-path classification: parity is computed from the
// intended bits (the controller encodes before storing), the stored
// bits differ from them exactly at the stuck mismatches, and each way
// tolerates two flipped bits.
func (e *ECC) Correct(cells []pcm.State, ls *LineStuck, sc *ECCScratch) (bits int, ok bool) {
	sc.grow(len(cells), e.ways)
	total := 0
	for w := 0; w < e.ways; w++ {
		msg := e.wayMsg(sc.msg, cells, w, nil)
		stored := e.wayMsg(sc.cw[bch.ParityBits:], cells, w, ls)
		diff := 0
		for i := range msg {
			if msg[i] != stored[i] {
				diff++
			}
		}
		if diff == 0 {
			continue
		}
		if diff > 2 {
			return 0, false
		}
		cw := sc.cw[:bch.ParityBits+len(stored)]
		e.code.EncodeTo(msg, cw[:bch.ParityBits])
		n, decOK := e.code.Decode(cw)
		if !decOK {
			return 0, false
		}
		for i := range msg {
			if cw[bch.ParityBits+i] != msg[i] {
				return 0, false
			}
		}
		total += n
	}
	return total, true
}

// ParityInto writes the parity of the intended cell vector into dst
// (length ParityLen), one bch parity block per way.
func (e *ECC) ParityInto(cells []pcm.State, dst []uint8, sc *ECCScratch) {
	sc.grow(len(cells), e.ways)
	for w := 0; w < e.ways; w++ {
		msg := e.wayMsg(sc.msg, cells, w, nil)
		e.code.EncodeTo(msg, dst[w*bch.ParityBits:(w+1)*bch.ParityBits])
	}
}

// Recover corrects a physically stored cell vector in place against the
// parity a write stored via ParityInto. ok=false leaves cells
// unspecified and means the stored states moved beyond the code's
// correction radius.
func (e *ECC) Recover(cells []pcm.State, parity []uint8, sc *ECCScratch) bool {
	sc.grow(len(cells), e.ways)
	for w := 0; w < e.ways; w++ {
		stored := e.wayMsg(sc.cw[bch.ParityBits:], cells, w, nil)
		cw := sc.cw[:bch.ParityBits+len(stored)]
		copy(cw[:bch.ParityBits], parity[w*bch.ParityBits:(w+1)*bch.ParityBits])
		if _, ok := e.code.Decode(cw); !ok {
			return false
		}
		k := 0
		for c := w; c < len(cells); c += e.ways {
			cells[c] = pcm.State(cw[bch.ParityBits+k] | cw[bch.ParityBits+k+1]<<1)
			k += 2
		}
	}
	return true
}
