package stats

import (
	"reflect"
	"testing"
)

func TestHistogramObserve(t *testing.T) {
	h := NewHistogram(10)
	for _, v := range []float64{0, 5, 9.99, 10, 25, 635, 640, 1e6, -3} {
		h.Observe(v)
	}
	if h.N != 9 {
		t.Errorf("N = %d, want 9", h.N)
	}
	if h.Counts[0] != 4 { // 0, 5, 9.99 and the clamped -3
		t.Errorf("bucket 0 = %d, want 4", h.Counts[0])
	}
	if h.Counts[1] != 1 || h.Counts[2] != 1 {
		t.Errorf("buckets 1,2 = %d,%d, want 1,1", h.Counts[1], h.Counts[2])
	}
	if h.Counts[63] != 1 { // 635 is in the last in-range bucket [630,640)
		t.Errorf("bucket 63 = %d, want 1", h.Counts[63])
	}
	if h.Over != 2 { // 640 and 1e6
		t.Errorf("Over = %d, want 2", h.Over)
	}
	if h.Max != 1e6 {
		t.Errorf("Max = %v", h.Max)
	}
}

func TestHistogramMergeIsAdditive(t *testing.T) {
	// Splitting a sample stream across two histograms and merging must
	// reproduce the single-histogram result exactly — the property the
	// per-bank shard merge relies on.
	whole := NewHistogram(4)
	a, b := NewHistogram(4), NewHistogram(4)
	for i := 0; i < 1000; i++ {
		v := float64(i%300) * 1.1
		whole.Observe(v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	a.Merge(b)
	if !reflect.DeepEqual(whole, a) {
		t.Errorf("merged split differs from whole:\nwhole:  %+v\nmerged: %+v", whole, a)
	}
}

func TestHistogramZeroValueMerge(t *testing.T) {
	// A zero Metrics accumulator must be a merge identity and adopt the
	// incoming width.
	var acc Histogram
	h := NewHistogram(2)
	h.Observe(3)
	acc.Merge(h)
	if acc.Width != 2 || acc.N != 1 || acc.Counts[1] != 1 {
		t.Errorf("zero-value merge = %+v", acc)
	}
	// Merging an untouched zero histogram in is a no-op.
	before := acc
	acc.Merge(Histogram{})
	if !reflect.DeepEqual(before, acc) {
		t.Error("merging a zero histogram changed the accumulator")
	}
}

func TestHistogramWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("merging different widths did not panic")
		}
	}()
	a, b := NewHistogram(1), NewHistogram(2)
	b.Observe(1)
	a.Merge(b)
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(1)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i)) // one sample per bucket 0..63, rest overflow
	}
	if got := h.Quantile(0.5); got != 50 {
		t.Errorf("p50 = %v, want 50 (upper edge of bucket 49)", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("p0 = %v, want 1", got)
	}
	if got := h.Quantile(1); got != 99 { // rank falls in overflow -> Max
		t.Errorf("p100 = %v, want Max=99", got)
	}
	if got := h.Mean(); got != 49.5 {
		t.Errorf("mean = %v, want 49.5", got)
	}
	var empty Histogram
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Error("empty histogram quantile/mean not 0")
	}
}

// TestHistogramQuantileAfterMerge covers the way the encrypted study
// uses Quantile: per-benchmark histograms merge first, and quantiles of
// the merged distribution must reflect all shards' samples.
func TestHistogramQuantileAfterMerge(t *testing.T) {
	a, b := NewHistogram(10), NewHistogram(10)
	for i := 0; i < 90; i++ {
		a.Observe(5) // bucket 0
	}
	for i := 0; i < 10; i++ {
		b.Observe(455) // bucket 45
	}
	a.Merge(b)
	if got := a.Quantile(0.5); got != 10 {
		t.Errorf("merged p50 = %v, want 10", got)
	}
	if got := a.Quantile(0.99); got != 460 {
		t.Errorf("merged p99 = %v, want 460 (upper edge of bucket 45)", got)
	}
	if a.N != 100 {
		t.Errorf("merged N = %d", a.N)
	}
}
