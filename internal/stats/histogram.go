package stats

// HistogramBuckets is the fixed bucket count of Histogram. Fixing the
// count (rather than the range) keeps the type a plain value — no slice,
// no allocation — so the simulator can embed histograms in its
// per-shard metrics, copy them when publishing snapshots, and merge
// per-bank partials with plain integer adds, all without touching the
// heap.
const HistogramBuckets = 64

// Histogram is a fixed-bucket, mergeable histogram of float64 samples.
// Bucket i counts samples in [i*Width, (i+1)*Width); samples at or past
// HistogramBuckets*Width land in the Over bucket (Max still records the
// exact largest sample). The zero value is inert: it merges as an
// identity element and adopts the width of the first non-zero histogram
// merged into it, which is what lets a zero Metrics accumulator fold
// per-shard partials without knowing the widths up front.
//
// Histogram is a value type. Observe and Merge mutate through a
// pointer; copying a Histogram snapshots it.
type Histogram struct {
	// Width is the bucket width. It is fixed at construction
	// (NewHistogram) and must match across merged histograms.
	Width  float64
	Counts [HistogramBuckets]uint64
	// Over counts samples >= HistogramBuckets*Width.
	Over uint64
	// N, Sum and Max summarize all samples, including overflowed ones.
	N   uint64
	Sum float64
	Max float64
}

// NewHistogram returns an empty histogram with the given bucket width.
func NewHistogram(width float64) Histogram {
	if width <= 0 {
		panic("stats: histogram width must be positive")
	}
	return Histogram{Width: width}
}

// Observe records one sample. Negative samples clamp into bucket 0.
func (h *Histogram) Observe(v float64) {
	h.N++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
	if v < 0 {
		v = 0
	}
	i := int(v / h.Width)
	if i >= HistogramBuckets {
		h.Over++
		return
	}
	h.Counts[i]++
}

// Merge folds o into h. An empty zero-width operand is a no-op; a
// zero-width receiver adopts o's width. Merging two configured
// histograms of different widths panics — their buckets are not
// commensurable.
func (h *Histogram) Merge(o Histogram) {
	if o.Width == 0 && o.N == 0 {
		return
	}
	if h.Width == 0 {
		h.Width = o.Width
	} else if o.Width != 0 && o.Width != h.Width {
		panic("stats: merging histograms with different bucket widths")
	}
	for i := range h.Counts {
		h.Counts[i] += o.Counts[i]
	}
	h.Over += o.Over
	h.N += o.N
	h.Sum += o.Sum
	if o.Max > h.Max {
		h.Max = o.Max
	}
}

// Mean returns the mean of all observed samples (0 when empty).
func (h Histogram) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return h.Sum / float64(h.N)
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]): the
// upper edge of the bucket holding the sample of that rank, or Max when
// the rank falls in the overflow region. Quantile(1) of a non-empty
// histogram with no overflow therefore bounds the largest sample from
// above, while Max is exact.
func (h Histogram) Quantile(q float64) float64 {
	if h.N == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.N))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= rank {
			return float64(i+1) * h.Width
		}
	}
	return h.Max
}
