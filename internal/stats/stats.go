// Package stats provides the small aggregation and table-formatting
// helpers the experiment harness uses to print figure series the way the
// paper reports them (per-benchmark bars with HMI / LMI / overall
// averages, granularity sweeps, improvement percentages).
package stats

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Series is an ordered set of labeled values (one bar group of a figure).
type Series struct {
	Name   string
	Labels []string
	Values []float64
}

// Add appends a labeled value.
func (s *Series) Add(label string, v float64) {
	s.Labels = append(s.Labels, label)
	s.Values = append(s.Values, v)
}

// Mean returns the arithmetic mean of the values (0 for empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMeanImprovement returns the mean of 1 - a[i]/b[i] — the average
// relative improvement of a over b (positive = a is lower/better).
func GeoMeanImprovement(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	var sum float64
	for i := range a {
		if b[i] == 0 {
			continue
		}
		sum += 1 - a[i]/b[i]
	}
	return sum / float64(len(a))
}

// Improvement returns 1 - a/b (positive when a is lower than b).
func Improvement(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return 1 - a/b
}

// Table renders rows with aligned columns for terminal output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given header.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends a row; cells are formatted with %v.
func (t *Table) Row(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// FormatFloat renders a float compactly: integers without decimals,
// small values with three significant decimals.
func FormatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av == 0:
		return "0"
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	ncol := len(t.header)
	for _, r := range t.rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	widths := make([]int, ncol)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(r []string) {
		for i := 0; i < ncol; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, ncol)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Percent formats a ratio as a signed percentage ("52.3%").
func Percent(x float64) string { return fmt.Sprintf("%.1f%%", x*100) }

// Rate formats n events over elapsed d as a human-readable event rate
// ("1.24M/s"). The replay tools use it to report write throughput.
func Rate(n uint64, d time.Duration) string {
	if d <= 0 {
		return "inf/s"
	}
	r := float64(n) / d.Seconds()
	switch {
	case r >= 1e9:
		return fmt.Sprintf("%.2fG/s", r/1e9)
	case r >= 1e6:
		return fmt.Sprintf("%.2fM/s", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.2fK/s", r/1e3)
	default:
		return fmt.Sprintf("%.0f/s", r)
	}
}

// SortedKeys returns map keys in sorted order (for deterministic output).
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
