package stats

import (
	"strings"
	"testing"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(48, 100); got != 0.52 {
		t.Errorf("Improvement = %v", got)
	}
	if Improvement(1, 0) != 0 {
		t.Error("division by zero not guarded")
	}
	if got := GeoMeanImprovement([]float64{50, 80}, []float64{100, 100}); got != 0.35 {
		t.Errorf("GeoMeanImprovement = %v", got)
	}
	if GeoMeanImprovement([]float64{1}, []float64{1, 2}) != 0 {
		t.Error("length mismatch not guarded")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "test"
	s.Add("a", 1)
	s.Add("b", 2)
	if len(s.Labels) != 2 || s.Values[1] != 2 {
		t.Errorf("Series = %+v", s)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("scheme", "energy")
	tb.Row("Baseline", 14123.4)
	tb.Row("WLCRC-16", 6777.0)
	out := tb.String()
	if !strings.Contains(out, "Baseline") || !strings.Contains(out, "6777") {
		t.Errorf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines, want 4", len(lines))
	}
	// Columns must align: all lines equal length after trimming right.
	w := len(strings.TrimRight(lines[0], " "))
	_ = w
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		14123.4: "14123",
		42.25:   "42.2",
		0.523:   "0.523",
		-5000:   "-5000",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(0.523); got != "52.3%" {
		t.Errorf("Percent = %q", got)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	keys := SortedKeys(m)
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Errorf("SortedKeys = %v", keys)
	}
}
