package stats

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestHistogramJSONRoundTrip(t *testing.T) {
	h := NewHistogram(1024)
	for _, v := range []float64{0, 100, 2047, 3000, 70000, 1e6, 512.5} {
		h.Observe(v)
	}
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	// The wire form trims trailing zero buckets: the highest populated
	// bucket here is 3000/1024 = 2, so "counts" carries 3 entries (0,
	// 100 and 512.5 in bucket 0; 2047 in bucket 1; 3000 in bucket 2; the
	// rest overflow), not 64.
	if s := string(data); !strings.Contains(s, `"counts":[3,1,1]`) {
		t.Errorf("wire form = %s, want trimmed counts [3,1,1]", s)
	}
	var back Histogram
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, h) {
		t.Errorf("round trip changed the histogram:\n got %+v\nwant %+v", back, h)
	}
}

func TestHistogramJSONZeroValue(t *testing.T) {
	var h Histogram
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back Histogram
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, h) {
		t.Errorf("zero histogram round trip = %+v", back)
	}
}

func TestHistogramJSONRejectsOversizedCounts(t *testing.T) {
	var h Histogram
	data := []byte(`{"width":1,"counts":[` + strings.TrimSuffix(strings.Repeat("1,", 65), ",") + `]}`)
	if err := json.Unmarshal(data, &h); err == nil {
		t.Fatal("accepted 65 count buckets")
	}
}
