package stats

import (
	"encoding/json"
	"fmt"
)

// histogramJSON is the wire schema of Histogram: stable lowercase keys,
// and Counts as a variable-length array with trailing zero buckets
// trimmed — most histograms populate a handful of low buckets, so the
// fixed [64]uint64 would serialize as a wall of zeros in every API
// response and store record.
type histogramJSON struct {
	Width  float64  `json:"width"`
	Counts []uint64 `json:"counts,omitempty"`
	Over   uint64   `json:"over,omitempty"`
	N      uint64   `json:"n"`
	Sum    float64  `json:"sum"`
	Max    float64  `json:"max"`
}

// MarshalJSON implements json.Marshaler with the stable trimmed schema.
// The value receiver matters: Metrics embeds Histogram by value, and
// encoding/json only consults value-receiver methods for
// non-addressable fields.
func (h Histogram) MarshalJSON() ([]byte, error) {
	last := -1
	for i, c := range h.Counts {
		if c != 0 {
			last = i
		}
	}
	var counts []uint64
	if last >= 0 {
		counts = h.Counts[:last+1]
	}
	return json.Marshal(histogramJSON{
		Width:  h.Width,
		Counts: counts,
		Over:   h.Over,
		N:      h.N,
		Sum:    h.Sum,
		Max:    h.Max,
	})
}

// UnmarshalJSON implements json.Unmarshaler, restoring the fixed-size
// bucket array from the trimmed wire form.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var w histogramJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if len(w.Counts) > HistogramBuckets {
		return fmt.Errorf("stats: histogram has %d count buckets, max %d", len(w.Counts), HistogramBuckets)
	}
	*h = Histogram{Width: w.Width, Over: w.Over, N: w.N, Sum: w.Sum, Max: w.Max}
	copy(h.Counts[:], w.Counts)
	return nil
}
