package exp

import (
	"testing"

	"wlcrc/internal/sim"
	"wlcrc/internal/stats"
)

// smallConfig keeps the unit-test runs fast; TestHeadline* use a larger
// budget and are skipped with -short.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.WritesPerBenchmark = 300
	cfg.RandomWrites = 400
	cfg.Footprint = 256
	return cfg
}

func TestFigure1Shapes(t *testing.T) {
	cfg := smallConfig()
	// Random workload (a): data energy must fall and aux energy must
	// rise as granularity shrinks.
	points, tbl := Figure1(cfg, true)
	if len(points) != 7 {
		t.Fatalf("got %d points", len(points))
	}
	if tbl.String() == "" {
		t.Error("empty table")
	}
	first, last := points[0], points[len(points)-1] // 8-bit vs 512-bit
	if first.Granularity != 8 || last.Granularity != 512 {
		t.Fatalf("granularity order wrong: %v .. %v", first.Granularity, last.Granularity)
	}
	if first.EnergyBlk >= last.EnergyBlk {
		t.Errorf("random: blk energy at 8b (%.0f) should be below 512b (%.0f)",
			first.EnergyBlk, last.EnergyBlk)
	}
	if first.EnergyAux <= last.EnergyAux {
		t.Errorf("random: aux energy at 8b (%.0f) should exceed 512b (%.0f)",
			first.EnergyAux, last.EnergyAux)
	}
	// Biased workloads (b): same trend directions.
	pointsB, _ := Figure1(cfg, false)
	if pointsB[0].EnergyAux <= pointsB[len(pointsB)-1].EnergyAux {
		t.Error("biased: aux energy should grow at fine granularity")
	}
	// Biased energy well below random energy (paper: data locality).
	if pointsB[3].Total() >= points[3].Total() {
		t.Errorf("biased total %.0f should be below random total %.0f",
			pointsB[3].Total(), points[3].Total())
	}
}

func TestFigure2AuxAdvantage(t *testing.T) {
	// On random data, 6cosets' blk energy is lower than 4cosets' at
	// every granularity (more candidates = more freedom).
	points, _ := Figure2(smallConfig())
	for i := range points["6cosets"] {
		p6, p4 := points["6cosets"][i], points["4cosets"][i]
		if p6.EnergyBlk > p4.EnergyBlk*1.02 {
			t.Errorf("g=%d: 6cosets blk %.0f worse than 4cosets %.0f",
				p6.Granularity, p6.EnergyBlk, p4.EnergyBlk)
		}
	}
}

func TestFigure3TotalsComparable(t *testing.T) {
	// Paper: on biased data the totals are nearly equal ("the write
	// energy of 4cosets is almost equal to that of 6cosets").
	points, _ := Figure3(smallConfig())
	for i := range points["6cosets"] {
		p6, p4 := points["6cosets"][i], points["4cosets"][i]
		lo, hi := p6.Total(), p4.Total()
		if lo > hi {
			lo, hi = hi, lo
		}
		if hi/lo > 1.35 {
			t.Errorf("g=%d: totals diverge: 6cosets %.0f vs 4cosets %.0f",
				p6.Granularity, p6.Total(), p4.Total())
		}
	}
}

func TestFigure4AverageRow(t *testing.T) {
	rows, tbl := Figure4(smallConfig())
	if rows[len(rows)-1].Benchmark != "ave." {
		t.Fatal("missing average row")
	}
	avg := rows[len(rows)-1]
	if avg.WLC[6] < 0.85 {
		t.Errorf("avg WLC k=6 = %.2f, want >= 0.85", avg.WLC[6])
	}
	if avg.FPCBDI > 0.45 {
		t.Errorf("avg FPC+BDI = %.2f, want ~0.30", avg.FPCBDI)
	}
	if avg.COC < 0.85 {
		t.Errorf("avg COC = %.2f", avg.COC)
	}
	if tbl.String() == "" {
		t.Error("empty table")
	}
}

func TestFigure5RestrictedClose(t *testing.T) {
	// §V: restricting the cosets "increases very little the write energy
	// relative to 4cosets"; aux energy must be lower for 3-r-cosets.
	points, _ := Figure5(smallConfig())
	for i := range points["4cosets"] {
		p4, pr := points["4cosets"][i], points["3-r-cosets"][i]
		if pr.EnergyAux > p4.EnergyAux {
			t.Errorf("g=%d: restricted aux %.0f exceeds 4cosets aux %.0f",
				pr.Granularity, pr.EnergyAux, p4.EnergyAux)
		}
		if pr.Total() > p4.Total()*1.25 {
			t.Errorf("g=%d: restricted total %.0f much worse than 4cosets %.0f",
				pr.Granularity, pr.Total(), p4.Total())
		}
	}
}

func TestEvaluationOrderings(t *testing.T) {
	// The Figure 8 ordering that defines the paper: WLCRC-16 wins, the
	// WLC family beats the full-line schemes, everything beats Baseline.
	e := RunEvaluation(smallConfig())
	energy := func(s string) float64 { return e.Average(s, sim.Metrics.AvgEnergy) }
	if energy("WLCRC-16") >= energy("WLC+4cosets") {
		t.Errorf("WLCRC-16 %.0f should beat WLC+4cosets %.0f",
			energy("WLCRC-16"), energy("WLC+4cosets"))
	}
	if energy("WLC+4cosets") >= energy("6cosets") {
		t.Errorf("WLC+4cosets %.0f should beat 6cosets %.0f",
			energy("WLC+4cosets"), energy("6cosets"))
	}
	for _, s := range []string{"FlipMin", "FNW", "DIN", "6cosets", "COC+4cosets", "WLC+4cosets", "WLCRC-16"} {
		if energy(s) >= energy("Baseline") {
			t.Errorf("%s %.0f should beat Baseline %.0f", s, energy(s), energy("Baseline"))
		}
	}
	// Tables render.
	for _, tbl := range []*stats.Table{e.Figure8(), e.Figure9(), e.Figure10()} {
		if tbl.String() == "" {
			t.Error("empty evaluation table")
		}
	}
	if e.Headline() == "" {
		t.Error("empty headline")
	}
}

func TestGranularityStudyWLCRC16Wins(t *testing.T) {
	points, tbl := GranularityStudy(smallConfig())
	if tbl.String() == "" {
		t.Error("empty table")
	}
	// Fig 11: WLCRC's minimum must be at 16-bit granularity and beat the
	// unrestricted families' minima.
	wl := points["WLCRC"]
	best := wl[0]
	for _, p := range wl {
		if p.Total() < best.Total() {
			best = p
		}
	}
	if best.Granularity != 16 {
		t.Errorf("WLCRC minimum at %d bits, want 16", best.Granularity)
	}
	for _, fam := range []string{"4cosets", "3cosets"} {
		min := points[fam][0].Total()
		for _, p := range points[fam] {
			if p.Total() < min {
				min = p.Total()
			}
		}
		if best.Total() >= min {
			t.Errorf("WLCRC-16 %.0f should beat %s minimum %.0f", best.Total(), fam, min)
		}
	}
}

func TestFigure14Monotonic(t *testing.T) {
	points, tbl := Figure14(smallConfig())
	if len(points) != 4 {
		t.Fatalf("got %d points", len(points))
	}
	if tbl.String() == "" {
		t.Error("empty table")
	}
	// Improvement must shrink as intermediate-state energies shrink, but
	// stay substantial (paper: 52% -> 32%).
	if points[0].Improvement <= points[3].Improvement {
		t.Errorf("improvement should shrink: %.2f .. %.2f",
			points[0].Improvement, points[3].Improvement)
	}
	if points[3].Improvement < 0.15 {
		t.Errorf("improvement at lowest energies %.2f, want >= 0.15 (paper: 32%%)",
			points[3].Improvement)
	}
}

func TestMultiObjectiveStudy(t *testing.T) {
	res, tbl := MultiObjective(smallConfig())
	if tbl.String() == "" {
		t.Error("empty table")
	}
	if res.MultiUpdated > res.PlainUpdated {
		t.Errorf("T=1%% updated %.1f exceeds plain %.1f", res.MultiUpdated, res.PlainUpdated)
	}
	if res.MultiEnergy > res.PlainEnergy*1.05 {
		t.Errorf("T=1%% energy %.0f exceeds plain %.0f by >5%%", res.MultiEnergy, res.PlainEnergy)
	}
}
