package exp

import (
	"errors"
	"fmt"
	"math"

	"wlcrc/internal/core"
	"wlcrc/internal/fault"
	"wlcrc/internal/sim"
	"wlcrc/internal/stats"
	"wlcrc/internal/workload"
)

// EnduranceRow is one scheme's lifetime digest under the accelerated
// stuck-at fault model.
type EnduranceRow struct {
	Scheme string
	// F is the scheme's merged fault/repair statistics at end of run.
	F fault.Stats
	// LifetimeX is the writes-to-first-retirement relative to the
	// Baseline scheme on the same trace (>1 = outlasts it). +Inf when
	// the scheme never retired a line within the run.
	LifetimeX float64
}

// enduranceSchemes spans the coset ladder the lifetime story is told
// over: raw differential writes, the unrestricted and compression-gated
// coset coders, and the paper's headline scheme.
var enduranceSchemes = []string{"Baseline", "6cosets", "COC+4cosets", "WLCRC-16"}

// EnduranceStudy replays a hot biased workload under an accelerated
// stuck-at fault model (cell endurance of 8 program cycles instead of
// 1e7, so a laptop-scale trace walks a line through its whole life) and
// reports each scheme's writes-to-first-retirement plus the repair
// pipeline's work along the way. Schemes that program fewer cells per
// write — the point of coset coding — push wear onset, and therefore
// the first retirement, later: the wear report's projected lifetime
// ratios, measured here as an actual replay outcome.
func EnduranceStudy(cfg Config) ([]EnduranceRow, *stats.Table) {
	p, ok := workload.ProfileByName("gcc")
	if !ok {
		panic("exp: gcc profile missing")
	}
	fp := cfg.Footprint
	if fp <= 0 {
		fp = 96
	}
	var schemes []core.Scheme
	for _, n := range enduranceSchemes {
		s, err := core.NewScheme(n, cfg.coreConfig())
		if err != nil {
			panic(err)
		}
		schemes = append(schemes, s)
	}
	opts := simOptions(cfg)
	opts.Faults = fault.Config{
		Enabled:            true,
		CellEndurance:      8,
		EnduranceSpread:    0.5,
		ECCBits:            4,
		SpareLines:         16,
		MaxRetiredFraction: 1,
	}
	e := sim.NewEngine(opts, schemes...)
	gen := cfg.source(workload.NewGenerator(p, fp, cfg.Seed))
	if err := e.RunContext(cfg.ctx(), &workload.Limited{Src: gen, N: cfg.WritesPerBenchmark}, 0); err != nil {
		// Accelerated wear is meant to walk schemes off the end of their
		// service life; a degraded ending is the study's data, anything
		// else — short of a SIGINT-driven cancellation — is a bug.
		if cfg.ctx().Err() != nil {
			panic(Interrupted{Benchmark: "endurance", Partial: e.Snapshot(), Err: cfg.ctx().Err()})
		}
		if !errors.As(err, new(*sim.DegradedError)) {
			panic(fmt.Sprintf("exp: endurance: %v", err))
		}
	}

	ms := e.Metrics()
	var base uint64
	for _, m := range ms {
		if m.Scheme == "Baseline" {
			base = m.Faults.FirstRetireSeq
		}
	}
	rows := make([]EnduranceRow, 0, len(ms))
	t := stats.NewTable("scheme", "writes to 1st retire", "lifetime vs Baseline",
		"stuck cells", "retired lines", "ECC-saved writes", "uncorrectable")
	for _, m := range ms {
		f := m.Faults
		rel := relativeRetire(f.FirstRetireSeq, base)
		rows = append(rows, EnduranceRow{Scheme: m.Scheme, F: f, LifetimeX: rel})
		first := "never"
		if f.FirstRetireSeq != 0 {
			first = fmt.Sprintf("%d", f.FirstRetireSeq)
		}
		t.Row(m.Scheme, first, formatLifetime(rel),
			fmt.Sprintf("%d", f.StuckCells), fmt.Sprintf("%d", f.RetiredLines),
			fmt.Sprintf("%d", f.CorrectedWrites), fmt.Sprintf("%d", f.Uncorrectable))
	}
	return rows, t
}

// relativeRetire turns two first-retirement sequence numbers into a
// lifetime ratio, treating "never retired" (0) as infinite life.
func relativeRetire(first, base uint64) float64 {
	switch {
	case base == 0:
		if first == 0 {
			return 1
		}
		return 0
	case first == 0:
		return math.Inf(1)
	default:
		return float64(first) / float64(base)
	}
}
