// Package exp contains the experiment runners that regenerate every
// table and figure of the paper's evaluation (Figures 1-5, 8-14, the
// §VI.B hardware table and the §VIII.D multi-objective study). Each
// runner returns structured results plus a formatted table; cmd/experiments
// prints them and EXPERIMENTS.md records paper-vs-measured values.
package exp

import (
	"context"
	"fmt"

	"wlcrc/internal/core"
	"wlcrc/internal/coset"
	"wlcrc/internal/pcm"
	"wlcrc/internal/sim"
	"wlcrc/internal/stats"
	"wlcrc/internal/trace"
	"wlcrc/internal/workload"
)

// Config scales the experiments. The paper uses 200M-line runs on a
// farm; the defaults here reproduce the shapes in seconds on a laptop.
// Crank WritesPerBenchmark up for tighter confidence intervals.
type Config struct {
	// WritesPerBenchmark is the number of write requests replayed per
	// benchmark profile.
	WritesPerBenchmark int
	// RandomWrites is the number of writes for random-workload figures.
	RandomWrites int
	// Footprint overrides the per-profile working-set size (0 = default).
	Footprint int
	// WarmupWrites are replayed (per benchmark) before metrics start
	// accumulating, so results reflect steady state rather than cold
	// first writes. Negative disables; zero picks 2x the footprint.
	WarmupWrites int
	// Seed makes every experiment deterministic.
	Seed uint64
	// Energy is the device energy model (Fig 14 swaps it).
	Energy pcm.EnergyModel
	// Workers is the goroutine count of the sharded replay engine
	// (0 = all CPUs, 1 = serial). Results are bit-identical for every
	// value — see sim.Engine — so this is purely a speed knob.
	Workers int
	// IngestRouters controls the engine's parallel ingest front-end
	// (0 = auto, negative = off, positive = that many routers). Purely a
	// speed knob like Workers — see sim.Options.IngestRouters.
	IngestRouters int
	// Encrypted replays every workload in its counter-mode encrypted
	// (whitened) form — the ciphertext an encrypted DIMM stores — using
	// EncryptionKey (0 = the default key). Compression-gated schemes
	// collapse under it; the encrypted study quantifies the damage and
	// the VCC recovery.
	Encrypted bool
	// EncryptionKey keys both the workload whitening (Encrypted) and the
	// VCC/Enc schemes built by the experiments.
	EncryptionKey uint64
	// ExtraSchemes are appended to the Figure 8/9/10 evaluation matrix
	// (e.g. the VCC family via cmd/experiments -vcc).
	ExtraSchemes []string
	// TrackWear enables dense per-cell wear accounting in every replay;
	// the wear digest lands in each result's M.Wear. Costs 4 bytes per
	// tracked cell per scheme — fine at experiment scale.
	TrackWear bool
	// Progress, when non-nil, receives live dispatcher reports from
	// every replay the experiments run (see sim.Options.Progress).
	Progress func(sim.Progress)
	// Context, when non-nil, cancels experiment replays cooperatively:
	// when it fires, the running experiment panics with an Interrupted
	// value carrying the partial metrics of the replay it stopped in —
	// cmd/experiments recovers it into a partial report instead of
	// dying mid-replay on SIGINT.
	Context context.Context
}

// Interrupted is the panic value an experiment raises when its
// Config.Context is canceled mid-replay. It carries the metrics of the
// prefix that replayed before the stop; callers recover it at the top
// of the run (the experiment runners' established failure mode is
// panic, so cancellation travels the same way).
type Interrupted struct {
	// Benchmark names the workload whose replay was interrupted.
	Benchmark string
	// Partial holds the interrupted replay's per-scheme snapshot.
	Partial []sim.Metrics
	// Err is the context's error (context.Canceled on SIGINT).
	Err error
}

// Error implements error so a recovered Interrupted prints cleanly.
func (i Interrupted) Error() string {
	return fmt.Sprintf("exp: %s interrupted: %v", i.Benchmark, i.Err)
}

// ctx resolves the configured context.
func (c Config) ctx() context.Context {
	if c.Context != nil {
		return c.Context
	}
	return context.Background()
}

// replay drains src through the engine, panicking with Interrupted
// (carrying the engine's partial snapshot) when cfg.Context fires and
// with a plain message on any other error — the experiments' uniform
// replay path, so every figure honors cancellation.
func replay(cfg Config, bench string, e *sim.Engine, src trace.Source) {
	err := e.RunContext(cfg.ctx(), src, 0)
	if err == nil {
		return
	}
	if cfg.ctx().Err() != nil {
		panic(Interrupted{Benchmark: bench, Partial: e.Snapshot(), Err: cfg.ctx().Err()})
	}
	panic(fmt.Sprintf("exp: %s: %v", bench, err))
}

// DefaultConfig returns laptop-scale defaults.
func DefaultConfig() Config {
	return Config{
		WritesPerBenchmark: 2000,
		RandomWrites:       4000,
		Seed:               1,
		Energy:             pcm.DefaultEnergy(),
	}
}

func (c Config) coreConfig() core.Config {
	return core.Config{Energy: c.Energy, EncryptionKey: c.EncryptionKey}
}

// source wraps a generator per the workload mode: plaintext, or the
// counter-mode encrypted stream when cfg.Encrypted is set.
func (c Config) source(gen trace.Source) trace.Source {
	if !c.Encrypted {
		return gen
	}
	return workload.Encrypted(gen, c.EncryptionKey)
}

// BenchResult holds one scheme's metrics on one benchmark.
type BenchResult struct {
	Benchmark string
	HMI       bool
	Scheme    string
	M         sim.Metrics
}

// runMatrix replays every profile through every scheme and returns
// results indexed [benchmark][scheme]. Each benchmark is warmed up so
// metrics reflect steady state.
func runMatrix(cfg Config, profiles []workload.Profile, schemes []core.Scheme) []BenchResult {
	var out []BenchResult
	for _, p := range profiles {
		s := sim.NewEngine(simOptions(cfg), schemes...)
		gen := cfg.source(workload.NewGenerator(p, cfg.Footprint, cfg.Seed))
		if w := cfg.warmup(p); w > 0 {
			replay(cfg, p.Name+" warmup", s, &workload.Limited{Src: gen, N: w})
			s.ResetMetrics()
		}
		replay(cfg, p.Name, s, &workload.Limited{Src: gen, N: cfg.WritesPerBenchmark})
		for _, m := range s.Metrics() {
			out = append(out, BenchResult{Benchmark: p.Name, HMI: p.HMI, Scheme: m.Scheme, M: m})
		}
	}
	return out
}

// warmup resolves the warm-up budget for one profile.
func (c Config) warmup(p workload.Profile) int {
	if c.WarmupWrites != 0 {
		if c.WarmupWrites < 0 {
			return 0
		}
		return c.WarmupWrites
	}
	fp := c.Footprint
	if fp <= 0 {
		fp = p.FootprintLines
	}
	return 2 * fp
}

func simOptions(cfg Config) sim.Options {
	o := sim.DefaultOptions()
	o.Energy = cfg.Energy
	o.Seed = cfg.Seed
	o.Workers = cfg.Workers
	o.IngestRouters = cfg.IngestRouters
	o.TrackWear = cfg.TrackWear
	o.Progress = cfg.Progress
	return o
}

// runRandom replays the random workload through the schemes.
func runRandom(cfg Config, schemes []core.Scheme) []sim.Metrics {
	s := sim.NewEngine(simOptions(cfg), schemes...)
	p := workload.RandomProfile()
	gen := cfg.source(workload.NewGenerator(p, cfg.Footprint, cfg.Seed))
	if w := cfg.warmup(p); w > 0 {
		replay(cfg, "random warmup", s, &workload.Limited{Src: gen, N: w})
		s.ResetMetrics()
	}
	replay(cfg, "random", s, &workload.Limited{Src: gen, N: cfg.RandomWrites})
	return s.Metrics()
}

// averages computes the mean of a metric over benchmarks for one scheme,
// restricted by group: "HMI", "LMI" or "" for all.
func averages(results []BenchResult, scheme, group string, metric func(sim.Metrics) float64) float64 {
	var xs []float64
	for _, r := range results {
		if r.Scheme != scheme {
			continue
		}
		if group == "HMI" && !r.HMI || group == "LMI" && r.HMI {
			continue
		}
		xs = append(xs, metric(r.M))
	}
	return stats.Mean(xs)
}

// granularityCosetSchemes builds the unrestricted coset encoders used by
// the sweep figures.
func granularityCosetSchemes(cfg Config, name string, grans []int) []core.Scheme {
	var cands []coset.Mapping
	switch name {
	case "6cosets":
		cands = coset.SixCosets()
	case "4cosets":
		cands = coset.Table1[:]
	case "3cosets":
		cands = coset.Table1[:3]
	default:
		panic("exp: unknown coset family " + name)
	}
	var out []core.Scheme
	for _, g := range grans {
		out = append(out, core.NewLineCosets(cfg.coreConfig(), fmt.Sprintf("%s-%d", name, g), cands, g))
	}
	return out
}
