package exp

import (
	"fmt"
	"strings"

	"wlcrc/internal/compress"
	"wlcrc/internal/core"
	"wlcrc/internal/pcm"
	"wlcrc/internal/sim"
	"wlcrc/internal/stats"
	"wlcrc/internal/workload"
)

// SweepPoint is one granularity point of an energy sweep figure.
type SweepPoint struct {
	Scheme      string
	Granularity int
	EnergyBlk   float64 // pJ per write, data region
	EnergyAux   float64 // pJ per write, aux region
	UpdatedBlk  float64
	UpdatedAux  float64
	DisturbBlk  float64
	DisturbAux  float64
}

// Total returns total energy per write.
func (p SweepPoint) Total() float64 { return p.EnergyBlk + p.EnergyAux }

// Figure1 reproduces Fig 1: 6cosets write energy (blk, aux, blk+aux)
// versus data block granularity 8..512 bits, for the random workload
// (variant (a)) or the biased SPEC/PARSEC workloads (variant (b)).
func Figure1(cfg Config, random bool) ([]SweepPoint, *stats.Table) {
	grans := []int{8, 16, 32, 64, 128, 256, 512}
	schemes := granularityCosetSchemes(cfg, "6cosets", grans)
	points := sweep(cfg, schemes, grans, random)
	t := stats.NewTable("granularity", "blk pJ", "aux pJ", "blk+aux pJ")
	for _, p := range points {
		t.Row(p.Granularity, p.EnergyBlk, p.EnergyAux, p.Total())
	}
	return points, t
}

// Figure2 reproduces Fig 2 (random workload) and Figure3 reproduces
// Fig 3 (biased workloads): 6cosets versus 4cosets across granularities
// 8..128, reporting aux, blk and total energy.
func Figure2(cfg Config) (map[string][]SweepPoint, *stats.Table) {
	return cosetComparison(cfg, []string{"6cosets", "4cosets"}, true)
}

// Figure3 is the biased-workload companion of Figure2.
func Figure3(cfg Config) (map[string][]SweepPoint, *stats.Table) {
	return cosetComparison(cfg, []string{"6cosets", "4cosets"}, false)
}

func cosetComparison(cfg Config, families []string, random bool) (map[string][]SweepPoint, *stats.Table) {
	grans := []int{8, 16, 32, 64, 128}
	out := make(map[string][]SweepPoint)
	for _, fam := range families {
		schemes := granularityCosetSchemes(cfg, fam, grans)
		out[fam] = sweep(cfg, schemes, grans, random)
	}
	t := stats.NewTable(append([]string{"granularity"}, tableCols(families)...)...)
	for i, g := range grans {
		row := []interface{}{g}
		for _, fam := range families {
			p := out[fam][i]
			row = append(row, p.EnergyAux, p.EnergyBlk, p.Total())
		}
		t.Row(row...)
	}
	return out, t
}

func tableCols(families []string) []string {
	var cols []string
	for _, f := range families {
		cols = append(cols, f+" aux", f+" blk", f+" total")
	}
	return cols
}

// Figure5 reproduces Fig 5: 4cosets vs 3cosets vs the line-level
// restricted 3-r-cosets on the biased workloads, 8..128-bit blocks.
func Figure5(cfg Config) (map[string][]SweepPoint, *stats.Table) {
	grans := []int{8, 16, 32, 64, 128}
	out := make(map[string][]SweepPoint)
	for _, fam := range []string{"4cosets", "3cosets"} {
		out[fam] = sweep(cfg, granularityCosetSchemes(cfg, fam, grans), grans, false)
	}
	var rSchemes []core.Scheme
	for _, g := range grans {
		rSchemes = append(rSchemes, core.NewRestrictedLineCosets(cfg.coreConfig(), g))
	}
	out["3-r-cosets"] = sweep(cfg, rSchemes, grans, false)
	families := []string{"4cosets", "3cosets", "3-r-cosets"}
	t := stats.NewTable(append([]string{"granularity"}, tableCols(families)...)...)
	for i, g := range grans {
		row := []interface{}{g}
		for _, fam := range families {
			p := out[fam][i]
			row = append(row, p.EnergyAux, p.EnergyBlk, p.Total())
		}
		t.Row(row...)
	}
	return out, t
}

// sweep runs one scheme per granularity and averages metrics over the
// workload set.
func sweep(cfg Config, schemes []core.Scheme, grans []int, random bool) []SweepPoint {
	var points []SweepPoint
	if random {
		ms := runRandom(cfg, schemes)
		for i, m := range ms {
			points = append(points, metricPoint(m, schemes[i].Name(), grans[i]))
		}
		return points
	}
	results := runMatrix(cfg, workload.Profiles(), schemes)
	for i, s := range schemes {
		points = append(points, SweepPoint{
			Scheme:      s.Name(),
			Granularity: grans[i],
			EnergyBlk:   averages(results, s.Name(), "", sim.Metrics.AvgEnergyData),
			EnergyAux:   averages(results, s.Name(), "", sim.Metrics.AvgEnergyAux),
			UpdatedBlk:  averages(results, s.Name(), "", sim.Metrics.AvgUpdatedData),
			UpdatedAux:  averages(results, s.Name(), "", sim.Metrics.AvgUpdatedAux),
			DisturbBlk:  averages(results, s.Name(), "", sim.Metrics.AvgDisturbData),
			DisturbAux:  averages(results, s.Name(), "", sim.Metrics.AvgDisturbAux),
		})
	}
	return points
}

func metricPoint(m sim.Metrics, name string, gran int) SweepPoint {
	return SweepPoint{
		Scheme:      name,
		Granularity: gran,
		EnergyBlk:   m.AvgEnergyData(),
		EnergyAux:   m.AvgEnergyAux(),
		UpdatedBlk:  m.AvgUpdatedData(),
		UpdatedAux:  m.AvgUpdatedAux(),
		DisturbBlk:  m.AvgDisturbData(),
		DisturbAux:  m.AvgDisturbAux(),
	}
}

// Figure4Row is one benchmark's compression coverage.
type Figure4Row struct {
	Benchmark string
	WLC       map[int]float64 // k -> fraction of lines compressed
	COC       float64
	FPCBDI    float64
}

// Figure4 reproduces Fig 4: percentage of memory lines compressed by WLC
// (k = 4..9 MSBs), COC (448-bit gate) and FPC+BDI (DIN's 369-bit gate),
// per benchmark plus the average.
func Figure4(cfg Config) ([]Figure4Row, *stats.Table) {
	var rows []Figure4Row
	ks := []int{4, 5, 6, 7, 8, 9}
	for _, p := range workload.Profiles() {
		g := workload.NewGenerator(p, cfg.Footprint, cfg.Seed)
		row := Figure4Row{Benchmark: p.Name, WLC: map[int]float64{}}
		hits := map[int]int{}
		coc, fb := 0, 0
		n := cfg.WritesPerBenchmark
		for i := 0; i < n; i++ {
			req, _ := g.Next()
			for _, k := range ks {
				if (compress.WLC{K: k}).LineCompressible(&req.New) {
					hits[k]++
				}
			}
			if compress.COCSize(&req.New) <= 448 {
				coc++
			}
			if compress.FPCBDISize(&req.New) <= 369 {
				fb++
			}
		}
		for _, k := range ks {
			row.WLC[k] = float64(hits[k]) / float64(n)
		}
		row.COC = float64(coc) / float64(n)
		row.FPCBDI = float64(fb) / float64(n)
		rows = append(rows, row)
	}
	// Average row.
	avg := Figure4Row{Benchmark: "ave.", WLC: map[int]float64{}}
	for _, r := range rows {
		for _, k := range ks {
			avg.WLC[k] += r.WLC[k]
		}
		avg.COC += r.COC
		avg.FPCBDI += r.FPCBDI
	}
	n := float64(len(rows))
	for _, k := range ks {
		avg.WLC[k] /= n
	}
	avg.COC /= n
	avg.FPCBDI /= n
	rows = append(rows, avg)

	t := stats.NewTable("bench", "4-MSBs", "5-MSBs", "6-MSBs", "7-MSBs", "8-MSBs", "9-MSBs", "COC", "FPC+BDI")
	for _, r := range rows {
		t.Row(r.Benchmark,
			stats.Percent(r.WLC[4]), stats.Percent(r.WLC[5]), stats.Percent(r.WLC[6]),
			stats.Percent(r.WLC[7]), stats.Percent(r.WLC[8]), stats.Percent(r.WLC[9]),
			stats.Percent(r.COC), stats.Percent(r.FPCBDI))
	}
	return rows, t
}

// Evaluation runs the Figure 8/9/10 matrix once: the eight §VIII schemes
// across all benchmarks.
type Evaluation struct {
	Results []BenchResult
	Schemes []string
}

// RunEvaluation executes the main evaluation matrix, appending any
// Config.ExtraSchemes (e.g. the VCC family) to the paper's eight.
func RunEvaluation(cfg Config) *Evaluation {
	names := append(core.EvaluationSchemes(), cfg.ExtraSchemes...)
	var schemes []core.Scheme
	for _, n := range names {
		s, err := core.NewScheme(n, cfg.coreConfig())
		if err != nil {
			panic(err)
		}
		schemes = append(schemes, s)
	}
	return &Evaluation{
		Results: runMatrix(cfg, workload.Profiles(), schemes),
		Schemes: names,
	}
}

// Table formats one metric of the evaluation matrix in the paper's
// Figure 8/9/10 layout: benchmarks as rows (HMI then LMI), schemes as
// columns, with HMI/LMI/overall average rows.
func (e *Evaluation) Table(metric func(sim.Metrics) float64, unit string) *stats.Table {
	t := stats.NewTable(append([]string{"bench (" + unit + ")"}, e.Schemes...)...)
	writeGroup := func(hmi bool, label string) {
		for _, p := range workload.Profiles() {
			if p.HMI != hmi {
				continue
			}
			row := []interface{}{p.Name}
			for _, s := range e.Schemes {
				row = append(row, e.metricFor(p.Name, s, metric))
			}
			t.Row(row...)
		}
		row := []interface{}{label}
		for _, s := range e.Schemes {
			group := "HMI"
			if !hmi {
				group = "LMI"
			}
			row = append(row, averages(e.Results, s, group, metric))
		}
		t.Row(row...)
	}
	writeGroup(true, "Ave.HMI")
	writeGroup(false, "Ave.LMI")
	row := []interface{}{"Ave."}
	for _, s := range e.Schemes {
		row = append(row, averages(e.Results, s, "", metric))
	}
	t.Row(row...)
	return t
}

func (e *Evaluation) metricFor(bench, scheme string, metric func(sim.Metrics) float64) float64 {
	for _, r := range e.Results {
		if r.Benchmark == bench && r.Scheme == scheme {
			return metric(r.M)
		}
	}
	return 0
}

// Average returns the all-benchmark average of a metric for a scheme.
func (e *Evaluation) Average(scheme string, metric func(sim.Metrics) float64) float64 {
	return averages(e.Results, scheme, "", metric)
}

// Figure8 formats write energy; Figure9 updated cells; Figure10
// disturbance errors.
func (e *Evaluation) Figure8() *stats.Table {
	return e.Table(sim.Metrics.AvgEnergy, "pJ")
}

// Figure9 formats the endurance metric.
func (e *Evaluation) Figure9() *stats.Table {
	return e.Table(sim.Metrics.AvgUpdated, "cells")
}

// Figure10 formats the disturbance metric.
func (e *Evaluation) Figure10() *stats.Table {
	return e.Table(sim.Metrics.AvgDisturb, "errors")
}

// Headline summarizes the paper's headline comparisons from an
// evaluation run.
func (e *Evaluation) Headline() string {
	energy := func(s string) float64 { return e.Average(s, sim.Metrics.AvgEnergy) }
	upd := func(s string) float64 { return e.Average(s, sim.Metrics.AvgUpdated) }
	var b strings.Builder
	fmt.Fprintf(&b, "WLCRC-16 energy vs Baseline:    %s (paper: 52%%)\n",
		stats.Percent(stats.Improvement(energy("WLCRC-16"), energy("Baseline"))))
	fmt.Fprintf(&b, "WLCRC-16 energy vs 6cosets:     %s (paper: 39%%)\n",
		stats.Percent(stats.Improvement(energy("WLCRC-16"), energy("6cosets"))))
	fmt.Fprintf(&b, "WLCRC-16 energy vs DIN:         %s (paper: 39%%)\n",
		stats.Percent(stats.Improvement(energy("WLCRC-16"), energy("DIN"))))
	fmt.Fprintf(&b, "WLCRC-16 energy vs FlipMin:     %s (paper: 48%%)\n",
		stats.Percent(stats.Improvement(energy("WLCRC-16"), energy("FlipMin"))))
	fmt.Fprintf(&b, "WLCRC-16 energy vs COC+4cosets: %s (paper: 39%%)\n",
		stats.Percent(stats.Improvement(energy("WLCRC-16"), energy("COC+4cosets"))))
	fmt.Fprintf(&b, "WLCRC-16 energy vs WLC+4cosets: %s (paper: 10%%)\n",
		stats.Percent(stats.Improvement(energy("WLCRC-16"), energy("WLC+4cosets"))))
	fmt.Fprintf(&b, "WLC+4cosets energy vs Baseline: %s (paper: 46%%)\n",
		stats.Percent(stats.Improvement(energy("WLC+4cosets"), energy("Baseline"))))
	fmt.Fprintf(&b, "WLCRC-16 updated cells vs Baseline: %s (paper: 20%%)\n",
		stats.Percent(stats.Improvement(upd("WLCRC-16"), upd("Baseline"))))
	fmt.Fprintf(&b, "WLCRC-16 updated cells vs 6cosets:  %s (paper: 11%%)\n",
		stats.Percent(stats.Improvement(upd("WLCRC-16"), upd("6cosets"))))
	return b.String()
}

// GranularityStudy runs the Figure 11/12/13 sweep: WLC+4cosets,
// WLC+3cosets and WLCRC at 8/16/32/64-bit blocks on the biased
// workloads.
func GranularityStudy(cfg Config) (map[string][]SweepPoint, *stats.Table) {
	grans := []int{8, 16, 32, 64}
	families := []string{"4cosets", "3cosets", "WLCRC"}
	out := make(map[string][]SweepPoint)
	for _, fam := range families {
		var schemes []core.Scheme
		for _, g := range grans {
			var s core.Scheme
			var err error
			switch fam {
			case "4cosets":
				s, err = core.NewWLCCosets(cfg.coreConfig(), 4, g)
			case "3cosets":
				s, err = core.NewWLCCosets(cfg.coreConfig(), 3, g)
			default:
				s, err = core.NewWLCRC(cfg.coreConfig(), g)
			}
			if err != nil {
				panic(err)
			}
			schemes = append(schemes, s)
		}
		out[fam] = sweep(cfg, schemes, grans, false)
	}
	t := stats.NewTable("granularity",
		"4cosets blk", "4cosets aux", "3cosets blk", "3cosets aux", "WLCRC blk", "WLCRC aux",
		"4cosets upd", "3cosets upd", "WLCRC upd",
		"4cosets dist", "3cosets dist", "WLCRC dist")
	for i, g := range grans {
		p4, p3, pw := out["4cosets"][i], out["3cosets"][i], out["WLCRC"][i]
		t.Row(g,
			p4.EnergyBlk, p4.EnergyAux, p3.EnergyBlk, p3.EnergyAux, pw.EnergyBlk, pw.EnergyAux,
			p4.UpdatedBlk+p4.UpdatedAux, p3.UpdatedBlk+p3.UpdatedAux, pw.UpdatedBlk+pw.UpdatedAux,
			p4.DisturbBlk+p4.DisturbAux, p3.DisturbBlk+p3.DisturbAux, pw.DisturbBlk+pw.DisturbAux)
	}
	return out, t
}

// Figure14Point is one energy-level sensitivity point.
type Figure14Point struct {
	S3, S4      float64 // SET energies in pJ
	Improvement float64 // WLCRC-16 energy improvement over baseline
}

// Figure14 reproduces the §X sensitivity study: WLCRC-16's improvement
// over the baseline as the intermediate state energies shrink.
func Figure14(cfg Config) ([]Figure14Point, *stats.Table) {
	levels := []struct{ s3, s4 float64 }{
		{307, 547}, {152, 273}, {75, 135}, {50, 80},
	}
	var points []Figure14Point
	t := stats.NewTable("S3 pJ", "S4 pJ", "improvement vs baseline")
	for _, lv := range levels {
		c := cfg
		c.Energy = pcm.ScaledEnergy(lv.s3, lv.s4)
		ccfg := c.coreConfig()
		wl, err := core.NewWLCRC(ccfg, 16)
		if err != nil {
			panic(err)
		}
		schemes := []core.Scheme{core.NewBaseline(), wl}
		results := runMatrix(c, workload.Profiles(), schemes)
		base := averages(results, "Baseline", "", sim.Metrics.AvgEnergy)
		wlE := averages(results, "WLCRC-16", "", sim.Metrics.AvgEnergy)
		imp := stats.Improvement(wlE, base)
		points = append(points, Figure14Point{S3: lv.s3, S4: lv.s4, Improvement: imp})
		t.Row(36+lv.s3, 36+lv.s4, stats.Percent(imp))
	}
	return points, t
}

// MultiObjectiveResult holds the §VIII.D study numbers.
type MultiObjectiveResult struct {
	PlainEnergy, MultiEnergy   float64
	PlainUpdated, MultiUpdated float64
	PerBench                   map[string][2]float64 // bench -> [plain updated, multi updated]
}

// MultiObjective reproduces §VIII.D: WLCRC-16 with the T=1% threshold
// trades a sliver of energy for fewer updated cells.
func MultiObjective(cfg Config) (MultiObjectiveResult, *stats.Table) {
	ccfgPlain := cfg.coreConfig()
	ccfgMulti := cfg.coreConfig()
	ccfgMulti.MultiObjectiveT = 0.01
	plain, err := core.NewWLCRC(ccfgPlain, 16)
	if err != nil {
		panic(err)
	}
	multi, err := core.NewWLCRC(ccfgMulti, 16)
	if err != nil {
		panic(err)
	}
	results := runMatrix(cfg, workload.Profiles(), []core.Scheme{plain, multi})
	res := MultiObjectiveResult{PerBench: map[string][2]float64{}}
	res.PlainEnergy = averages(results, plain.Name(), "", sim.Metrics.AvgEnergy)
	res.MultiEnergy = averages(results, multi.Name(), "", sim.Metrics.AvgEnergy)
	res.PlainUpdated = averages(results, plain.Name(), "", sim.Metrics.AvgUpdated)
	res.MultiUpdated = averages(results, multi.Name(), "", sim.Metrics.AvgUpdated)
	for _, r := range results {
		e := res.PerBench[r.Benchmark]
		if r.Scheme == plain.Name() {
			e[0] = r.M.AvgUpdated()
		} else {
			e[1] = r.M.AvgUpdated()
		}
		res.PerBench[r.Benchmark] = e
	}
	t := stats.NewTable("metric", "WLCRC-16", "WLCRC-16(T=1%)")
	t.Row("avg energy pJ", res.PlainEnergy, res.MultiEnergy)
	t.Row("avg updated cells", res.PlainUpdated, res.MultiUpdated)
	for _, b := range []string{"lesl", "lbm"} {
		e := res.PerBench[b]
		t.Row("updated cells "+b, e[0], e[1])
	}
	return res, t
}
