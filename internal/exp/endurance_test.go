package exp

import (
	"math"
	"strings"
	"testing"
)

// TestEnduranceStudy checks the accelerated-lifetime study's structure
// and its headline claim: under the same wear-accelerated replay, the
// coset coders retire their first line no earlier than Baseline, and
// the paper's headline scheme measurably later. Everything is seeded,
// so the outcome is deterministic — but the assertions stay ordinal
// (later-than, never exact sequence numbers) so retuning the study's
// default scale does not invalidate them.
func TestEnduranceStudy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WritesPerBenchmark = 1500
	rows, tbl := EnduranceStudy(cfg)
	if len(rows) != len(enduranceSchemes) {
		t.Fatalf("%d rows, want %d", len(rows), len(enduranceSchemes))
	}
	byName := map[string]EnduranceRow{}
	for _, r := range rows {
		byName[r.Scheme] = r
		if r.F.LinesTouched == 0 {
			t.Errorf("%s: no lines touched under the fault model", r.Scheme)
		}
		if r.F.StuckCells == 0 {
			t.Errorf("%s: accelerated endurance produced no stuck cells", r.Scheme)
		}
	}
	base := byName["Baseline"]
	if base.F.FirstRetireSeq == 0 {
		t.Fatal("Baseline never retired a line: the accelerated model is not accelerated enough")
	}
	if base.LifetimeX != 1 {
		t.Fatalf("Baseline relative lifetime = %v, want 1", base.LifetimeX)
	}
	wl := byName["WLCRC-16"]
	if !math.IsInf(wl.LifetimeX, 1) && wl.LifetimeX <= 1 {
		t.Errorf("WLCRC-16 lifetime %vx does not outlast Baseline (first retire %d vs %d)",
			wl.LifetimeX, wl.F.FirstRetireSeq, base.F.FirstRetireSeq)
	}
	for _, r := range rows {
		if r.Scheme == "Baseline" {
			continue
		}
		if !math.IsInf(r.LifetimeX, 1) && r.LifetimeX < 1 {
			t.Errorf("%s retires before Baseline (%vx)", r.Scheme, r.LifetimeX)
		}
	}
	out := tbl.String()
	for _, n := range enduranceSchemes {
		if !strings.Contains(out, n) {
			t.Errorf("table is missing scheme %s:\n%s", n, out)
		}
	}
}
