package exp

import (
	"testing"

	"wlcrc/internal/sim"
)

func encryptedTestConfig() Config {
	cfg := DefaultConfig()
	cfg.WritesPerBenchmark = 300
	cfg.Footprint = 128
	return cfg
}

// TestEncryptedStudyAcceptance asserts the encrypted scenario's
// headline claims at test scale: the compression gate collapses to ~0
// on ciphertext while it stays high on plaintext, every VCC scheme
// reduces energy and updated cells against the raw encrypted write, the
// recovery grows with the candidate count, and the quantile columns are
// coherent.
func TestEncryptedStudyAcceptance(t *testing.T) {
	rows, tbl := EncryptedStudy(encryptedTestConfig())
	if tbl == nil || len(rows) == 0 {
		t.Fatal("empty study")
	}
	byKey := map[[2]string]EncryptedRow{}
	for _, r := range rows {
		byKey[[2]string{r.Mode, r.Scheme}] = r
		if r.EnergyP50 > r.EnergyP99 {
			t.Errorf("%s/%s: p50 %.0f > p99 %.0f", r.Mode, r.Scheme, r.EnergyP50, r.EnergyP99)
		}
		if r.EnergyP50 <= 0 || r.Energy <= 0 {
			t.Errorf("%s/%s: degenerate energy stats", r.Mode, r.Scheme)
		}
	}

	// Gate collapse: WLCRC compresses >80% of plaintext writes, ~0% of
	// encrypted ones; the Enc(WLCRC-16) wrapper shows the same collapse
	// already on plaintext.
	if f := byKey[[2]string{"plain", "WLCRC-16"}].Compressed; f < 0.8 {
		t.Errorf("plaintext WLCRC-16 compressed %.2f, want > 0.8", f)
	}
	if f := byKey[[2]string{"encrypted", "WLCRC-16"}].Compressed; f > 0.001 {
		t.Errorf("encrypted WLCRC-16 compressed %.4f, want ~0", f)
	}
	if f := byKey[[2]string{"plain", "Enc(WLCRC-16)"}].Compressed; f > 0.001 {
		t.Errorf("Enc(WLCRC-16) compressed %.4f on plaintext, want ~0", f)
	}

	// VCC recovery against the raw encrypted write, in both modes (VCC
	// is data-agnostic, so both rows describe encrypted-memory traffic).
	for _, mode := range []string{"plain", "encrypted"} {
		raw := byKey[[2]string{mode, "Enc(Baseline)"}]
		prev := raw.Energy
		for _, n := range []string{"VCC-2", "VCC-4", "VCC-8"} {
			r := byKey[[2]string{mode, n}]
			if r.Energy >= raw.Energy {
				t.Errorf("%s/%s energy %.0f >= raw encrypted %.0f", mode, n, r.Energy, raw.Energy)
			}
			if r.Updated >= raw.Updated {
				t.Errorf("%s/%s updated %.1f >= raw encrypted %.1f", mode, n, r.Updated, raw.Updated)
			}
			if r.Energy >= prev {
				t.Errorf("%s/%s energy %.0f not below the smaller pool's %.0f", mode, n, r.Energy, prev)
			}
			prev = r.Energy
		}
	}
}

// TestEncryptedConfigWhitensEveryExperiment spot-checks the global
// Config.Encrypted switch: the fig8 matrix run under it must show the
// WLCRC gate collapsed.
func TestEncryptedConfigWhitensEveryExperiment(t *testing.T) {
	cfg := encryptedTestConfig()
	cfg.Encrypted = true
	e := RunEvaluation(cfg)
	var writes, compressed int
	for _, r := range e.Results {
		if r.Scheme != "WLCRC-16" {
			continue
		}
		writes += r.M.Writes
		compressed += r.M.CompressedWrites
	}
	if writes == 0 {
		t.Fatal("no WLCRC-16 results")
	}
	if f := float64(compressed) / float64(writes); f > 0.001 {
		t.Errorf("encrypted evaluation still compresses %.4f of WLCRC-16 writes", f)
	}
}

// TestExtraSchemesJoinEvaluation covers the -vcc path: extra schemes
// appear in the matrix with populated metrics.
func TestExtraSchemesJoinEvaluation(t *testing.T) {
	cfg := encryptedTestConfig()
	cfg.WritesPerBenchmark = 100
	cfg.ExtraSchemes = []string{"VCC-4"}
	e := RunEvaluation(cfg)
	if got := e.Schemes[len(e.Schemes)-1]; got != "VCC-4" {
		t.Fatalf("ExtraSchemes not appended: %v", e.Schemes)
	}
	if v := e.Average("VCC-4", sim.Metrics.AvgEnergy); v <= 0 {
		t.Errorf("VCC-4 average energy %v", v)
	}
}
