package exp

import (
	"wlcrc/internal/core"
	"wlcrc/internal/sim"
	"wlcrc/internal/stats"
	"wlcrc/internal/workload"
)

// EncryptedRow aggregates one scheme's behavior on one workload mode
// (plaintext or counter-mode encrypted) across the whole benchmark
// matrix.
type EncryptedRow struct {
	Mode   string // "plain" or "encrypted"
	Scheme string
	// Energy / Updated are the benchmark-averaged per-write figures
	// (mean of per-benchmark means, like the Figure 8/9 "Ave." rows).
	Energy  float64
	Updated float64
	// EnergyP50 / EnergyP99 are per-write energy quantile bounds from
	// the merged per-write histograms — the tail a mean hides.
	EnergyP50 float64
	EnergyP99 float64
	// Compressed is the fraction of all writes that took the scheme's
	// encoded (compressed) path.
	Compressed float64
}

// EncryptedStudy runs the encrypted-memory comparison: the raw and
// compression-gated encoders plus the VCC family, on the plaintext
// benchmark stream and on its counter-mode encrypted form. It is the
// experiment behind `experiments -run encrypted`: on ciphertext the
// WLCRC gate collapses (compressed rate ~0, energy at the raw encrypted
// write's level) while VCC-n keeps reducing energy and updated cells
// because its candidates are derived from the encryption counter rather
// than from data statistics. The VCC and Enc(...) schemes encrypt
// internally, so their plain-mode rows already show encrypted-memory
// behavior; the encrypted mode additionally whitens the stream itself,
// demonstrating that data-agnostic schemes are unaffected by what the
// "plaintext" looks like.
func EncryptedStudy(cfg Config) ([]EncryptedRow, *stats.Table) {
	names := append([]string{"Baseline", "FlipMin", "WLCRC-16"}, core.EncryptedSchemes()...)
	var schemes []core.Scheme
	for _, n := range names {
		s, err := core.NewScheme(n, cfg.coreConfig())
		if err != nil {
			panic(err)
		}
		schemes = append(schemes, s)
	}

	var rows []EncryptedRow
	for _, mode := range []string{"plain", "encrypted"} {
		c := cfg
		c.Encrypted = mode == "encrypted"
		results := runMatrix(c, workload.Profiles(), schemes)
		for _, name := range names {
			row := EncryptedRow{
				Mode:    mode,
				Scheme:  name,
				Energy:  averages(results, name, "", sim.Metrics.AvgEnergy),
				Updated: averages(results, name, "", sim.Metrics.AvgUpdated),
			}
			var hist stats.Histogram
			writes, compressed := 0, 0
			for _, r := range results {
				if r.Scheme != name {
					continue
				}
				hist.Merge(r.M.EnergyHist)
				writes += r.M.Writes
				compressed += r.M.CompressedWrites
			}
			row.EnergyP50 = hist.Quantile(0.5)
			row.EnergyP99 = hist.Quantile(0.99)
			if writes > 0 {
				row.Compressed = float64(compressed) / float64(writes)
			}
			rows = append(rows, row)
		}
	}

	t := stats.NewTable("mode", "scheme", "pJ/write", "p50 pJ", "p99 pJ",
		"cells/write", "compressed")
	for _, r := range rows {
		t.Row(r.Mode, r.Scheme, r.Energy, r.EnergyP50, r.EnergyP99,
			r.Updated, stats.Percent(r.Compressed))
	}
	return rows, t
}
