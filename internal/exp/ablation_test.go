package exp

import (
	"strings"
	"testing"
)

func TestAblationMultiObjective(t *testing.T) {
	tbl := AblationMultiObjective(smallConfig(), []float64{0.01, 0.2})
	out := tbl.String()
	if !strings.Contains(out, "plain") || !strings.Contains(out, "1.0%") {
		t.Errorf("table:\n%s", out)
	}
}

func TestAblationDisturbAware(t *testing.T) {
	tbl := AblationDisturbAware(smallConfig(), []float64{500, 2000})
	if tbl.String() == "" {
		t.Error("empty table")
	}
	// The lambda=2000 row must reduce disturbance vs plain; verified by
	// the core-level test in detail, smoke-checked here.
	if !strings.Contains(tbl.String(), "2000") {
		t.Errorf("missing lambda row:\n%s", tbl.String())
	}
}

func TestAblationEmbedding(t *testing.T) {
	tbl := AblationEmbedding(smallConfig())
	out := tbl.String()
	for _, want := range []string{"3cosets-16(ext-aux)", "3-r-cosets-16", "WLCRC-16"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// WLCRC-16 must have the smallest external-aux footprint (1 cell).
	if !strings.Contains(out, " 1") {
		t.Errorf("expected a 1-aux-cell row:\n%s", out)
	}
}
