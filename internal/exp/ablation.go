package exp

import (
	"wlcrc/internal/core"
	"wlcrc/internal/coset"
	"wlcrc/internal/sim"
	"wlcrc/internal/stats"
	"wlcrc/internal/workload"
)

// Ablations quantify the design choices DESIGN.md calls out beyond what
// the paper's own figures cover:
//
//  1. multi-objective threshold sweep (§VIII.D generalized),
//  2. the write-disturbance-aware extension's lambda sweep (§XI future
//     work),
//  3. WLCRC against its own uncompressed restricted-coset core
//     (3-r-cosets with external aux cells): how much of the win is the
//     in-word embedding vs the restriction itself.

// AblationMultiObjective sweeps the §VIII.D threshold T.
func AblationMultiObjective(cfg Config, thresholds []float64) *stats.Table {
	t := stats.NewTable("T", "pJ/write", "cells/write", "vs T=0 energy", "vs T=0 cells")
	base := runWLCRCVariant(cfg, core.Config{Energy: cfg.Energy})
	t.Row("0 (plain)", base.AvgEnergy(), base.AvgUpdated(), "-", "-")
	for _, T := range thresholds {
		cc := core.Config{Energy: cfg.Energy, MultiObjectiveT: T}
		m := runWLCRCVariant(cfg, cc)
		t.Row(stats.Percent(T), m.AvgEnergy(), m.AvgUpdated(),
			stats.Percent(stats.Improvement(m.AvgEnergy(), base.AvgEnergy())),
			stats.Percent(stats.Improvement(m.AvgUpdated(), base.AvgUpdated())))
	}
	return t
}

// AblationDisturbAware sweeps the §XI lambda (pJ per expected error).
func AblationDisturbAware(cfg Config, lambdas []float64) *stats.Table {
	t := stats.NewTable("lambda pJ/err", "pJ/write", "disturb/write", "vs l=0 energy", "vs l=0 disturb")
	base := runWLCRCVariant(cfg, core.Config{Energy: cfg.Energy})
	t.Row("0 (plain)", base.AvgEnergy(), base.AvgDisturb(), "-", "-")
	for _, l := range lambdas {
		cc := core.Config{Energy: cfg.Energy, DisturbAwareLambda: l}
		m := runWLCRCVariant(cfg, cc)
		t.Row(l, m.AvgEnergy(), m.AvgDisturb(),
			stats.Percent(stats.Improvement(m.AvgEnergy(), base.AvgEnergy())),
			stats.Percent(stats.Improvement(m.AvgDisturb(), base.AvgDisturb())))
	}
	return t
}

// AblationEmbedding compares WLCRC-16 against the same restricted coset
// coding with auxiliary symbols stored in *extra* cells (3-r-cosets-16,
// §V) and against unrestricted 3cosets-16: isolating (a) the value of
// the coset restriction and (b) the value of embedding the aux bits into
// WLC-reclaimed space.
func AblationEmbedding(cfg Config) *stats.Table {
	ccfg := core.Config{Energy: cfg.Energy}
	wlcrc16, err := core.NewWLCRC(ccfg, 16)
	if err != nil {
		panic(err)
	}
	schemes := []core.Scheme{
		core.NewLineCosets(ccfg, "3cosets-16(ext-aux)", coset.Table1[:3], 16),
		core.NewRestrictedLineCosets(ccfg, 16),
		wlcrc16,
	}
	results := runMatrix(cfg, workload.Profiles(), schemes)
	t := stats.NewTable("variant", "pJ/write", "aux pJ", "cells/write", "aux cells")
	for _, s := range schemes {
		t.Row(s.Name(),
			averages(results, s.Name(), "", sim.Metrics.AvgEnergy),
			averages(results, s.Name(), "", sim.Metrics.AvgEnergyAux),
			averages(results, s.Name(), "", sim.Metrics.AvgUpdated),
			s.TotalCells()-256)
	}
	return t
}

// runWLCRCVariant runs a WLCRC-16 built from cc over all benchmarks and
// returns the pooled metrics.
func runWLCRCVariant(cfg Config, cc core.Config) sim.Metrics {
	s, err := core.NewWLCRC(cc, 16)
	if err != nil {
		panic(err)
	}
	results := runMatrix(cfg, workload.Profiles(), []core.Scheme{s})
	var pooled sim.Metrics
	pooled.Scheme = s.Name()
	for _, r := range results {
		pooled.Writes += r.M.Writes
		pooled.Energy.Add(r.M.Energy)
		pooled.Disturb.Add(r.M.Disturb)
	}
	return pooled
}
