package exp

import (
	"fmt"
	"math"

	"wlcrc/internal/stats"
	"wlcrc/internal/wear"
)

// WearRow is one scheme's wear digest over the whole benchmark matrix.
type WearRow struct {
	Scheme string
	// S is the wear summary merged across all benchmarks.
	S wear.Summary
	// LifetimeX is the projected first-cell-failure lifetime relative to
	// the Baseline scheme on the same workloads (>1 = outlasts it).
	LifetimeX float64
}

// WearReport replays the evaluation benchmark matrix with dense
// per-cell wear tracking and digests each scheme's wear distribution:
// the Figure 9 mean, the worst cell, distribution quantiles, the
// imbalance factor, and the first-cell-failure lifetime projection
// relative to Baseline — the endurance story the paper tells through
// average updated cells, extended to the distribution level.
func WearReport(cfg Config) ([]WearRow, *stats.Table) {
	cfg.TrackWear = true
	return WearReportFrom(RunEvaluation(cfg))
}

// WearReportFrom digests an already-computed evaluation, so a caller
// that has run the fig 8/9/10 matrix with Config.TrackWear enabled
// (cmd/experiments' shared evaluation, for instance) does not replay it
// a second time. An evaluation run without wear tracking yields empty
// summaries.
func WearReportFrom(e *Evaluation) ([]WearRow, *stats.Table) {
	names := e.Schemes

	// Merge each scheme's wear digest across benchmarks. Distinct
	// benchmarks replay distinct engine instances, so the merged summary
	// treats their footprints as disjoint regions of one larger array.
	merged := make(map[string]wear.Summary, len(names))
	for _, r := range e.Results {
		s := merged[r.Scheme]
		s.Merge(r.M.Wear)
		merged[r.Scheme] = s
	}

	base := merged["Baseline"]
	rows := make([]WearRow, 0, len(names))
	t := stats.NewTable("scheme", "cells/write", "max wear", "p50", "p99",
		"imbalance", "writes to 1st failure", "lifetime vs Baseline")
	for _, n := range names {
		s := merged[n]
		rel := s.RelativeLifetime(base)
		rows = append(rows, WearRow{Scheme: n, S: s, LifetimeX: rel})
		t.Row(n, s.AvgUpdatedCells(), fmt.Sprintf("%d", s.MaxCellWear),
			fmt.Sprintf("%d", s.Quantile(0.5)), fmt.Sprintf("%d", s.Quantile(0.99)),
			s.WearImbalance(), formatLifetime(s.LifetimeWrites(wear.DefaultCellEndurance)),
			fmt.Sprintf("%.2fx", rel))
	}
	return rows, t
}

// formatLifetime renders a projected write budget compactly.
func formatLifetime(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.3g", v)
}
