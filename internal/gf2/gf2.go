// Package gf2 implements arithmetic in the binary extension fields
// GF(2^m) using log/antilog tables. It is the foundation of the BCH
// codec in internal/bch, which DIN [16] uses to correct up to two write
// disturbance errors per memory line.
package gf2

import "fmt"

// DefaultPrimitive returns a primitive polynomial (including the x^m and
// constant terms, so bit m and bit 0 are set) for GF(2^m), for m in
// [2, 16]. These are the standard minimum-weight primitive polynomials.
func DefaultPrimitive(m int) uint32 {
	polys := map[int]uint32{
		2:  0x7,     // x^2+x+1
		3:  0xb,     // x^3+x+1
		4:  0x13,    // x^4+x+1
		5:  0x25,    // x^5+x^2+1
		6:  0x43,    // x^6+x+1
		7:  0x89,    // x^7+x^3+1
		8:  0x11d,   // x^8+x^4+x^3+x^2+1
		9:  0x211,   // x^9+x^4+1
		10: 0x409,   // x^10+x^3+1
		11: 0x805,   // x^11+x^2+1
		12: 0x1053,  // x^12+x^6+x^4+x+1
		13: 0x201b,  // x^13+x^4+x^3+x+1
		14: 0x4443,  // x^14+x^10+x^6+x+1
		15: 0x8003,  // x^15+x+1
		16: 0x1100b, // x^16+x^12+x^3+x+1
	}
	p, ok := polys[m]
	if !ok {
		panic(fmt.Sprintf("gf2: no default primitive polynomial for m=%d", m))
	}
	return p
}

// Field is GF(2^m) represented with exponential and logarithm tables over
// a primitive element alpha.
type Field struct {
	M    int    // extension degree
	N    int    // multiplicative group order, 2^m - 1
	poly uint32 // primitive polynomial
	exp  []uint16
	log  []uint16
}

// NewField constructs GF(2^m) using the given primitive polynomial, or
// the default for m if poly is zero.
func NewField(m int, poly uint32) *Field {
	if m < 2 || m > 16 {
		panic("gf2: m out of range [2,16]")
	}
	if poly == 0 {
		poly = DefaultPrimitive(m)
	}
	n := (1 << uint(m)) - 1
	f := &Field{M: m, N: n, poly: poly}
	f.exp = make([]uint16, 2*n)
	f.log = make([]uint16, n+1)
	x := uint32(1)
	for i := 0; i < n; i++ {
		f.exp[i] = uint16(x)
		f.log[x] = uint16(i)
		x <<= 1
		if x>>uint(m)&1 == 1 {
			x ^= poly
		}
	}
	if x != 1 {
		panic(fmt.Sprintf("gf2: polynomial %#x is not primitive for m=%d", poly, m))
	}
	// Duplicate the exp table so Mul can skip a modulo.
	copy(f.exp[n:], f.exp[:n])
	return f
}

// Add returns a+b (XOR in characteristic 2).
func (f *Field) Add(a, b uint16) uint16 { return a ^ b }

// Mul returns the product of a and b.
func (f *Field) Mul(a, b uint16) uint16 {
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[int(f.log[a])+int(f.log[b])]
}

// Inv returns the multiplicative inverse of a. It panics on zero.
func (f *Field) Inv(a uint16) uint16 {
	if a == 0 {
		panic("gf2: inverse of zero")
	}
	return f.exp[f.N-int(f.log[a])]
}

// Div returns a/b. It panics if b is zero.
func (f *Field) Div(a, b uint16) uint16 {
	if b == 0 {
		panic("gf2: division by zero")
	}
	if a == 0 {
		return 0
	}
	return f.exp[(int(f.log[a])+f.N-int(f.log[b]))%f.N]
}

// Pow returns a^e for e >= 0.
func (f *Field) Pow(a uint16, e int) uint16 {
	if a == 0 {
		if e == 0 {
			return 1
		}
		return 0
	}
	le := (int(f.log[a]) * e) % f.N
	if le < 0 {
		le += f.N
	}
	return f.exp[le]
}

// Exp returns alpha^e (e may be any integer).
func (f *Field) Exp(e int) uint16 {
	e %= f.N
	if e < 0 {
		e += f.N
	}
	return f.exp[e]
}

// Log returns the discrete log base alpha of a. It panics on zero.
func (f *Field) Log(a uint16) int {
	if a == 0 {
		panic("gf2: log of zero")
	}
	return int(f.log[a])
}

// MinimalPoly returns the coefficients (ascending degree, values 0/1) of
// the minimal polynomial over GF(2) of alpha^e: the product of
// (x - alpha^(e*2^i)) over the conjugacy class of e.
func (f *Field) MinimalPoly(e int) []uint8 {
	// Collect the cyclotomic coset of e modulo N.
	coset := []int{}
	seen := map[int]bool{}
	c := e % f.N
	for !seen[c] {
		seen[c] = true
		coset = append(coset, c)
		c = c * 2 % f.N
	}
	// Multiply out (x + alpha^c) for each c, with coefficients in GF(2^m);
	// the result is guaranteed to have 0/1 coefficients.
	poly := []uint16{1} // constant polynomial 1
	for _, c := range coset {
		root := f.Exp(c)
		next := make([]uint16, len(poly)+1)
		for i, coef := range poly {
			next[i+1] ^= coef            // x * poly
			next[i] ^= f.Mul(coef, root) // root * poly
		}
		poly = next
	}
	out := make([]uint8, len(poly))
	for i, coef := range poly {
		if coef > 1 {
			panic("gf2: minimal polynomial has non-binary coefficient")
		}
		out[i] = uint8(coef)
	}
	return out
}
