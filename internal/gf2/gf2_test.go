package gf2

import (
	"testing"
	"testing/quick"
)

func TestFieldConstruction(t *testing.T) {
	for m := 2; m <= 12; m++ {
		f := NewField(m, 0)
		if f.N != (1<<uint(m))-1 {
			t.Errorf("m=%d: N = %d", m, f.N)
		}
	}
}

func TestNonPrimitivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for reducible polynomial")
		}
	}()
	// x^4 + 1 is not primitive.
	NewField(4, 0x11)
}

func TestMulProperties(t *testing.T) {
	f := NewField(10, 0)
	if f.Mul(0, 5) != 0 || f.Mul(5, 0) != 0 {
		t.Error("multiplication by zero")
	}
	if f.Mul(1, 777) != 777 {
		t.Error("multiplication by one")
	}
	// alpha * alpha = alpha^2.
	a := f.Exp(1)
	if f.Mul(a, a) != f.Exp(2) {
		t.Error("alpha^2 mismatch")
	}
}

func TestQuickMulCommutativeAssociative(t *testing.T) {
	f := NewField(10, 0)
	g := func(a, b, c uint16) bool {
		a %= uint16(f.N + 1)
		b %= uint16(f.N + 1)
		c %= uint16(f.N + 1)
		if f.Mul(a, b) != f.Mul(b, a) {
			return false
		}
		return f.Mul(f.Mul(a, b), c) == f.Mul(a, f.Mul(b, c))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDistributive(t *testing.T) {
	f := NewField(10, 0)
	g := func(a, b, c uint16) bool {
		a %= uint16(f.N + 1)
		b %= uint16(f.N + 1)
		c %= uint16(f.N + 1)
		return f.Mul(a, f.Add(b, c)) == f.Add(f.Mul(a, b), f.Mul(a, c))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestInvDiv(t *testing.T) {
	f := NewField(10, 0)
	for a := uint16(1); a <= uint16(f.N); a++ {
		if f.Mul(a, f.Inv(a)) != 1 {
			t.Fatalf("a * a^-1 != 1 for a=%d", a)
		}
	}
	if f.Div(0, 3) != 0 {
		t.Error("0/3 != 0")
	}
	if f.Div(6, 3) != f.Mul(6, f.Inv(3)) {
		t.Error("Div inconsistent with Mul/Inv")
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewField(4, 0).Inv(0)
}

func TestPowExpLog(t *testing.T) {
	f := NewField(10, 0)
	if f.Pow(0, 0) != 1 || f.Pow(0, 5) != 0 {
		t.Error("Pow with zero base")
	}
	a := f.Exp(7)
	if f.Pow(a, 3) != f.Exp(21) {
		t.Error("Pow mismatch")
	}
	if f.Log(f.Exp(123)) != 123 {
		t.Error("Log(Exp) mismatch")
	}
	if f.Exp(-1) != f.Exp(f.N-1) {
		t.Error("negative Exp")
	}
	if f.Exp(f.N) != 1 {
		t.Error("Exp(N) != 1")
	}
}

func TestMinimalPolyAlpha(t *testing.T) {
	// The minimal polynomial of alpha is the primitive polynomial itself.
	f := NewField(10, 0)
	mp := f.MinimalPoly(1)
	want := []uint8{1, 0, 0, 1, 0, 0, 0, 0, 0, 0, 1} // x^10+x^3+1
	if len(mp) != len(want) {
		t.Fatalf("degree = %d", len(mp)-1)
	}
	for i := range want {
		if mp[i] != want[i] {
			t.Fatalf("coefficient %d = %d, want %d", i, mp[i], want[i])
		}
	}
}

func TestMinimalPolyRoots(t *testing.T) {
	// Every element of the conjugacy class of alpha^3 must be a root of
	// MinimalPoly(3).
	f := NewField(10, 0)
	mp := f.MinimalPoly(3)
	if len(mp)-1 != 10 {
		t.Fatalf("m3 degree = %d, want 10", len(mp)-1)
	}
	e := 3
	for i := 0; i < 10; i++ {
		root := f.Exp(e)
		var acc uint16
		for d := len(mp) - 1; d >= 0; d-- {
			acc = f.Add(f.Mul(acc, root), uint16(mp[d]))
		}
		if acc != 0 {
			t.Errorf("alpha^%d is not a root of m3", e)
		}
		e = e * 2 % f.N
	}
}
