package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"wlcrc/internal/sim"
)

// mkMetrics builds a distinguishable metrics value for round-trip
// checks (the scheme name and a couple of counters are enough — full
// metric fidelity is covered by the sim JSON tests).
func mkMetrics(scheme string, writes int, energy float64) sim.Metrics {
	m := sim.Metrics{Scheme: scheme, Writes: writes}
	m.Energy.EnergyData = energy
	m.Energy.UpdatedData = writes * 3
	m.EnergyHist.Merge(m.EnergyHist) // keep the zero histogram inert
	return m
}

func mkJob(id, label, workload string, schemes ...string) JobRecord {
	var results []WorkloadResult
	var ms []sim.Metrics
	for i, s := range schemes {
		ms = append(ms, mkMetrics(s, 100+i, float64(1000*(i+1))))
	}
	results = append(results, WorkloadResult{Workload: workload, Metrics: ms})
	return JobRecord{
		ID:        id,
		Label:     label,
		State:     "done",
		Created:   42,
		Finished:  43,
		Workloads: []string{workload},
		Schemes:   schemes,
		Spec:      json.RawMessage(`{"writes":100}`),
		Results:   results,
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	j1 := mkJob("j1", "base", "gcc", "Baseline", "WLCRC-16")
	j2 := mkJob("j2", "enc", "lbm", "VCC-8")
	for _, j := range []JobRecord{j1, j2} {
		if err := s.PutJob(j); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.PutSeries(SeriesPoint{Name: "encode", JobID: "j1", Unix: 7, Values: map[string]float64{"WLCRC-16": 1466}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Jobs(); len(got) != 2 {
		t.Fatalf("Jobs() = %d records, want 2", len(got))
	}
	got, ok := r.Job("j1")
	if !ok {
		t.Fatal("job j1 missing after reopen")
	}
	if !reflect.DeepEqual(got, j1) {
		t.Errorf("job j1 changed across restart:\n got %+v\nwant %+v", got, j1)
	}
	pts := r.Series("encode")
	if len(pts) != 1 || pts[0].Values["WLCRC-16"] != 1466 {
		t.Errorf("series encode = %+v, want one point with WLCRC-16=1466", pts)
	}
	if names := r.SeriesNames(); len(names) != 1 || names[0] != "encode" {
		t.Errorf("SeriesNames = %v", names)
	}
}

func TestJSONLQueries(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.PutJob(mkJob("j1", "base", "gcc", "Baseline", "WLCRC-16")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutJob(mkJob("j2", "enc", "gcc", "WLCRC-16")); err != nil {
		t.Fatal(err)
	}

	rows := s.Results(Query{Scheme: "wlcrc-16"}) // case-insensitive
	if len(rows) != 2 {
		t.Fatalf("Results(scheme=WLCRC-16) = %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Scheme != "WLCRC-16" {
			t.Errorf("row scheme = %q", r.Scheme)
		}
	}
	if rows := s.Results(Query{Scheme: "WLCRC-16", Label: "enc"}); len(rows) != 1 || rows[0].JobID != "j2" {
		t.Errorf("Results(scheme+label) = %+v, want the single j2 row", rows)
	}
	if rows := s.Results(Query{Workload: "lbm"}); len(rows) != 0 {
		t.Errorf("Results(workload=lbm) = %d rows, want 0", len(rows))
	}

	// Latest record per ID wins: a terminal rewrite supersedes the
	// pending stub without duplicating the listing.
	upd := mkJob("j1", "base", "gcc", "Baseline")
	upd.State = "canceled"
	if err := s.PutJob(upd); err != nil {
		t.Fatal(err)
	}
	if got := s.Jobs(); len(got) != 2 || got[0].State != "canceled" {
		t.Errorf("after rewrite: %d jobs, j1 state %q", len(got), got[0].State)
	}
}

// TestJSONLCrashRecovery tears the tail off the newest segment — the
// on-disk state a crash mid-append leaves behind — and checks that
// reopening keeps every complete record, drops the torn line, and
// appends cleanly afterwards.
func TestJSONLCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutJob(mkJob("j1", "", "gcc", "Baseline")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutJob(mkJob("j2", "", "gcc", "WLCRC-16")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := filepath.Glob(filepath.Join(dir, segmentPrefix+"*"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments written (err=%v)", err)
	}
	last := segs[len(segs)-1]
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":"job","job":{"id":"torn","sta`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	if got := r.Jobs(); len(got) != 2 {
		t.Fatalf("after recovery: %d jobs, want 2", len(got))
	}
	if _, ok := r.Job("torn"); ok {
		t.Error("torn record resurrected")
	}
	// The recovered store keeps accepting writes, and they survive yet
	// another reopen (new segment, old tail untouched).
	if err := r.PutJob(mkJob("j3", "", "lbm", "VCC-8")); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := r2.Jobs(); len(got) != 3 {
		t.Fatalf("after recovery+append+reopen: %d jobs, want 3", len(got))
	}
}

// TestJSONLCorruptMiddleFails: corruption anywhere but the torn tail is
// a real integrity problem and must surface, not be silently skipped.
func TestJSONLCorruptMiddleFails(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutJob(mkJob("j1", "", "gcc", "Baseline")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, segmentPrefix+"*"))
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segs[0], append([]byte("garbage not json\n"), raw...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open succeeded on a segment with corruption before valid records")
	}
}

func TestJSONLSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.maxBytes = 512 // force rotation quickly
	for i := 0; i < 8; i++ {
		if err := s.PutJob(mkJob(string(rune('a'+i)), "", "gcc", "Baseline")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, segmentPrefix+"*"))
	if len(segs) < 2 {
		t.Fatalf("expected rotation to produce multiple segments, got %v", segs)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Jobs(); len(got) != 8 {
		t.Fatalf("after rotation: %d jobs, want 8", len(got))
	}
}
