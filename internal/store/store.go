// Package store is the persistence layer behind the pcmserver job
// daemon: it records finished (and interrupted) simulation jobs — the
// spec that launched them plus the per-scheme Metrics, fault stats and
// wear digests they produced — and named bench series compatible with
// the BENCH_encode.json regression baselines, so runs survive a server
// restart and stay queryable and comparable across days.
//
// The only implementation today is JSONL (Open): append-only JSON-lines
// segments under a data directory plus an in-memory index rebuilt on
// open. Everything consumes the Store interface, so a SQLite (or any
// other) backend can slot in later without touching the jobs or server
// layers. The format is deliberately dumb: one self-describing JSON
// envelope per line, recovered by re-scanning, with a truncated final
// line (a crash mid-append) tolerated and skipped.
package store

import (
	"encoding/json"
	"strings"

	"wlcrc/internal/sim"
)

// WorkloadResult is one workload's slice of a job's results: the merged
// per-scheme metrics of a single replay, index-aligned with the job's
// scheme list.
type WorkloadResult struct {
	Workload string        `json:"workload"`
	Metrics  []sim.Metrics `json:"metrics"`
}

// JobRecord is the persisted form of one job. Spec carries the exact
// submission body (re-runnable verbatim); the flattened Label, Trace,
// Workloads and Schemes columns exist so queries never need to parse
// it. A record is written once when the job is accepted (no Results)
// and rewritten at its terminal state — the index keeps the latest
// version per ID.
type JobRecord struct {
	ID    string `json:"id"`
	Label string `json:"label,omitempty"`
	// State is the job's state machine position when the record was
	// written: pending, running, done, failed or canceled. Records left
	// in a non-terminal state belong to a previous server process that
	// died before finishing them.
	State    string `json:"state"`
	Error    string `json:"error,omitempty"`
	Degraded bool   `json:"degraded,omitempty"`
	// Created and Finished are unix nanoseconds (Finished 0 while the
	// job is live).
	Created  int64 `json:"created_unix_ns"`
	Finished int64 `json:"finished_unix_ns,omitempty"`

	Trace     string   `json:"trace,omitempty"`
	Workloads []string `json:"workloads,omitempty"`
	Schemes   []string `json:"schemes,omitempty"`

	// Spec is the verbatim submission body (a jobs.Spec, stored opaquely
	// so the store does not depend on the jobs package).
	Spec json.RawMessage `json:"spec,omitempty"`

	// Results holds the per-workload, per-scheme metrics of a finished
	// job — partial when the job was canceled or failed mid-replay.
	Results []WorkloadResult `json:"results,omitempty"`
}

// SeriesPoint is one observation of a named bench series: a flat
// key→value map in the same shape cmd/benchguard parses out of `go test
// -bench` output (scheme → ns/op, "workers=N" → ns/run, ...), so
// server-recorded series feed the same regression gates as
// BENCH_encode.json. Jobs with a Series label record their per-scheme
// pJ/write here; CI pushes measured bench maps over POST /v1/series.
type SeriesPoint struct {
	Name   string             `json:"name"`
	JobID  string             `json:"job_id,omitempty"`
	Unix   int64              `json:"unix_ns"`
	Values map[string]float64 `json:"values"`
}

// Query filters Results. Zero fields match everything; set fields must
// match exactly (Scheme matches the metrics' scheme name).
type Query struct {
	Scheme   string
	Workload string
	Label    string
	JobID    string
}

// ResultRow is one (job, workload, scheme) result — the flattened,
// queryable grain of the store.
type ResultRow struct {
	JobID    string      `json:"job_id"`
	Label    string      `json:"label,omitempty"`
	Workload string      `json:"workload"`
	Scheme   string      `json:"scheme"`
	Finished int64       `json:"finished_unix_ns"`
	Metrics  sim.Metrics `json:"metrics"`
}

// Store is the persistence interface the jobs manager and HTTP server
// program against. Implementations must be safe for concurrent use.
type Store interface {
	// PutJob appends (or, for an existing ID, supersedes) a job record.
	PutJob(rec JobRecord) error
	// Job returns the latest record for id.
	Job(id string) (JobRecord, bool)
	// Jobs returns every job record, oldest first.
	Jobs() []JobRecord
	// Results flattens finished jobs into (job, workload, scheme) rows
	// matching q, oldest job first.
	Results(q Query) []ResultRow
	// PutSeries appends one series observation.
	PutSeries(p SeriesPoint) error
	// Series returns the named series' points in append order.
	Series(name string) []SeriesPoint
	// SeriesNames returns the sorted names of all recorded series.
	SeriesNames() []string
	// Close flushes and releases the backing files. The store must not
	// be used afterwards.
	Close() error
}

// Match reports whether row passes the query filters.
func (q Query) Match(row ResultRow) bool {
	if q.Scheme != "" && !strings.EqualFold(q.Scheme, row.Scheme) {
		return false
	}
	if q.Workload != "" && !strings.EqualFold(q.Workload, row.Workload) {
		return false
	}
	if q.Label != "" && !strings.EqualFold(q.Label, row.Label) {
		return false
	}
	if q.JobID != "" && q.JobID != row.JobID {
		return false
	}
	return true
}

// flatten expands one job record into result rows.
func flatten(rec JobRecord) []ResultRow {
	var rows []ResultRow
	for _, wr := range rec.Results {
		for _, m := range wr.Metrics {
			rows = append(rows, ResultRow{
				JobID:    rec.ID,
				Label:    rec.Label,
				Workload: wr.Workload,
				Scheme:   m.Scheme,
				Finished: rec.Finished,
				Metrics:  m,
			})
		}
	}
	return rows
}
