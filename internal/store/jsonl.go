package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// segmentPrefix / segmentSuffix name the append-only files inside a
// store directory: segment-000001.jsonl, segment-000002.jsonl, ...
// Every Open starts a fresh segment lazily on its first write and never
// appends to an old one, so a segment torn by a crash can only ever be
// torn at its very end.
const (
	segmentPrefix = "segment-"
	segmentSuffix = ".jsonl"
)

// defaultSegmentBytes rotates the active segment once it grows past
// this size, bounding the blast radius of a corrupt file and keeping
// individual files greppable.
const defaultSegmentBytes = 8 << 20

// envelope is the one-line JSON frame every record travels in. T tags
// the payload ("job" or "series"); unknown tags are skipped on read so
// future record kinds do not break old readers.
type envelope struct {
	T      string       `json:"t"`
	Job    *JobRecord   `json:"job,omitempty"`
	Series *SeriesPoint `json:"series,omitempty"`
}

// JSONL is the stdlib-only Store implementation: append-only JSONL
// segments plus an in-memory index rebuilt by scanning them on Open.
// Writes append one envelope line and update the index under one lock;
// reads serve from the index alone.
type JSONL struct {
	dir string

	mu        sync.Mutex
	file      *os.File
	w         *bufio.Writer
	fileBytes int64
	nextSeg   int
	maxBytes  int64

	jobs     map[string]JobRecord
	jobOrder []string // first-seen order
	series   map[string][]SeriesPoint

	writes uint64
	closed bool
}

// Open loads (or creates) a JSONL store under dir. Existing segments
// are scanned oldest-first to rebuild the index; a truncated or
// garbage final line — the signature of a crash mid-append — is
// tolerated and skipped, while corruption anywhere else is reported.
func Open(dir string) (*JSONL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &JSONL{
		dir:      dir,
		maxBytes: defaultSegmentBytes,
		jobs:     make(map[string]JobRecord),
		series:   make(map[string][]SeriesPoint),
		nextSeg:  1,
	}
	segs, err := s.segments()
	if err != nil {
		return nil, err
	}
	for _, seg := range segs {
		if err := s.load(seg); err != nil {
			return nil, err
		}
	}
	if n := len(segs); n > 0 {
		// Segment numbers are monotonic; never reuse (or append to) an
		// existing file, so old tails stay immutable.
		if num, ok := segmentNumber(segs[n-1]); ok {
			s.nextSeg = num + 1
		}
	}
	return s, nil
}

// segments returns the store's segment paths in numeric order.
func (s *JSONL) segments() ([]string, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var segs []string
	for _, e := range ents {
		name := e.Name()
		if _, ok := segmentNumber(name); ok {
			segs = append(segs, filepath.Join(s.dir, name))
		}
	}
	sort.Strings(segs) // zero-padded numbers sort lexically
	return segs, nil
}

// segmentNumber extracts the numeric part of a segment file name.
func segmentNumber(path string) (int, bool) {
	name := filepath.Base(path)
	if len(name) <= len(segmentPrefix)+len(segmentSuffix) ||
		name[:len(segmentPrefix)] != segmentPrefix ||
		name[len(name)-len(segmentSuffix):] != segmentSuffix {
		return 0, false
	}
	var n int
	if _, err := fmt.Sscanf(name[len(segmentPrefix):len(name)-len(segmentSuffix)], "%d", &n); err != nil {
		return 0, false
	}
	return n, true
}

// load replays one segment into the index. The final line of a segment
// is allowed to be torn: every segment was once the active segment of
// some process, and a crash mid-append leaves exactly one truncated
// line at its end (reopens always start a new segment, so the torn
// tail stays where the crash left it). Recovery means keeping every
// complete record before it; garbage anywhere else is a hard error.
func (s *JSONL) load(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	lines := bytes.Split(raw, []byte("\n"))
	for i, line := range lines {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var env envelope
		if err := json.Unmarshal(line, &env); err != nil {
			if lastNonEmpty(lines, i) {
				// Torn tail from a crash mid-append: everything before it
				// is intact, so recover by dropping just this line.
				return nil
			}
			return fmt.Errorf("store: %s line %d: %w", filepath.Base(path), i+1, err)
		}
		s.apply(env)
	}
	return nil
}

// lastNonEmpty reports whether lines[i] is the final line with content.
func lastNonEmpty(lines [][]byte, i int) bool {
	for _, l := range lines[i+1:] {
		if len(bytes.TrimSpace(l)) != 0 {
			return false
		}
	}
	return true
}

// apply folds one decoded envelope into the index.
func (s *JSONL) apply(env envelope) {
	switch env.T {
	case "job":
		if env.Job == nil {
			return
		}
		if _, seen := s.jobs[env.Job.ID]; !seen {
			s.jobOrder = append(s.jobOrder, env.Job.ID)
		}
		s.jobs[env.Job.ID] = *env.Job
	case "series":
		if env.Series == nil {
			return
		}
		s.series[env.Series.Name] = append(s.series[env.Series.Name], *env.Series)
	}
}

// append writes one envelope line to the active segment, rotating
// first when the segment is full. Callers hold s.mu.
func (s *JSONL) append(env envelope) error {
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	line, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if s.file == nil || s.fileBytes+int64(len(line))+1 > s.maxBytes {
		if err := s.rotate(); err != nil {
			return err
		}
	}
	if _, err := s.w.Write(line); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := s.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// Flush per record: a record acknowledged to a client must survive a
	// process exit (OS durability is enough for a simulation result
	// store; add fsync here if the backend ever holds source data).
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.fileBytes += int64(len(line)) + 1
	s.writes++
	return nil
}

// rotate closes the active segment and opens the next one.
func (s *JSONL) rotate() error {
	if s.file != nil {
		s.w.Flush()
		s.file.Close()
	}
	path := filepath.Join(s.dir, fmt.Sprintf("%s%06d%s", segmentPrefix, s.nextSeg, segmentSuffix))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.nextSeg++
	s.file = f
	s.w = bufio.NewWriter(f)
	s.fileBytes = 0
	return nil
}

// PutJob implements Store.
func (s *JSONL) PutJob(rec JobRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.append(envelope{T: "job", Job: &rec}); err != nil {
		return err
	}
	s.apply(envelope{T: "job", Job: &rec})
	return nil
}

// Job implements Store.
func (s *JSONL) Job(id string) (JobRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.jobs[id]
	return rec, ok
}

// Jobs implements Store.
func (s *JSONL) Jobs() []JobRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobRecord, 0, len(s.jobOrder))
	for _, id := range s.jobOrder {
		out = append(out, s.jobs[id])
	}
	return out
}

// Results implements Store.
func (s *JSONL) Results(q Query) []ResultRow {
	s.mu.Lock()
	defer s.mu.Unlock()
	var rows []ResultRow
	for _, id := range s.jobOrder {
		for _, row := range flatten(s.jobs[id]) {
			if q.Match(row) {
				rows = append(rows, row)
			}
		}
	}
	return rows
}

// PutSeries implements Store.
func (s *JSONL) PutSeries(p SeriesPoint) error {
	if p.Name == "" {
		return fmt.Errorf("store: series point needs a name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.append(envelope{T: "series", Series: &p}); err != nil {
		return err
	}
	s.apply(envelope{T: "series", Series: &p})
	return nil
}

// Series implements Store.
func (s *JSONL) Series(name string) []SeriesPoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	pts := s.series[name]
	out := make([]SeriesPoint, len(pts))
	copy(out, pts)
	return out
}

// SeriesNames implements Store.
func (s *JSONL) SeriesNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.series))
	for n := range s.series {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Writes returns the number of records appended by this process — the
// store-writes counter behind the server's /metrics endpoint.
func (s *JSONL) Writes() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writes
}

// Close implements Store.
func (s *JSONL) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.file != nil {
		if err := s.w.Flush(); err != nil {
			s.file.Close()
			return fmt.Errorf("store: %w", err)
		}
		if err := s.file.Close(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	return nil
}

var _ Store = (*JSONL)(nil)
