package bch

import (
	"testing"
	"testing/quick"

	"wlcrc/internal/prng"
)

func makeCodeword(c *Code, msg []uint8) []uint8 {
	parity := c.Encode(msg)
	cw := make([]uint8, len(parity)+len(msg))
	copy(cw, parity)
	copy(cw[len(parity):], msg)
	return cw
}

func randMsg(r *prng.Xoshiro256, n int) []uint8 {
	msg := make([]uint8, n)
	for i := range msg {
		msg[i] = uint8(r.Intn(2))
	}
	return msg
}

func TestGeneratorDegree(t *testing.T) {
	c := New()
	g := c.Generator()
	if len(g) != ParityBits+1 {
		t.Fatalf("generator has %d coefficients, want 21", len(g))
	}
	if g[0] != 1 || g[ParityBits] != 1 {
		t.Error("generator must be monic with nonzero constant term")
	}
}

func TestCleanCodewordHasZeroSyndromes(t *testing.T) {
	c := New()
	r := prng.New(1)
	for _, n := range []int{1, 64, 369, 492} {
		msg := randMsg(r, n)
		cw := makeCodeword(c, msg)
		s1, s3 := c.Syndromes(cw)
		if s1 != 0 || s3 != 0 {
			t.Errorf("n=%d: clean codeword has syndromes %d, %d", n, s1, s3)
		}
		corrected, ok := c.Decode(cw)
		if !ok || corrected != 0 {
			t.Errorf("n=%d: decode of clean codeword: %d, %v", n, corrected, ok)
		}
	}
}

func TestCorrectSingleError(t *testing.T) {
	c := New()
	r := prng.New(2)
	msg := randMsg(r, 492)
	clean := makeCodeword(c, msg)
	for pos := 0; pos < len(clean); pos += 13 {
		cw := make([]uint8, len(clean))
		copy(cw, clean)
		cw[pos] ^= 1
		corrected, ok := c.Decode(cw)
		if !ok || corrected != 1 {
			t.Fatalf("pos %d: corrected=%d ok=%v", pos, corrected, ok)
		}
		for i := range cw {
			if cw[i] != clean[i] {
				t.Fatalf("pos %d: bit %d still wrong", pos, i)
			}
		}
	}
}

func TestCorrectDoubleError(t *testing.T) {
	c := New()
	r := prng.New(3)
	msg := randMsg(r, 492)
	clean := makeCodeword(c, msg)
	n := len(clean)
	for trial := 0; trial < 300; trial++ {
		p1 := r.Intn(n)
		p2 := r.Intn(n)
		if p1 == p2 {
			continue
		}
		cw := make([]uint8, n)
		copy(cw, clean)
		cw[p1] ^= 1
		cw[p2] ^= 1
		corrected, ok := c.Decode(cw)
		if !ok || corrected != 2 {
			t.Fatalf("positions %d,%d: corrected=%d ok=%v", p1, p2, corrected, ok)
		}
		for i := range cw {
			if cw[i] != clean[i] {
				t.Fatalf("positions %d,%d: bit %d still wrong", p1, p2, i)
			}
		}
	}
}

func TestTripleErrorDetectedOrMiscorrected(t *testing.T) {
	// A t=2 code cannot correct 3 errors. It must either report failure
	// or "correct" to some other codeword; it must never loop or panic,
	// and if it claims success the result must be a valid codeword.
	c := New()
	r := prng.New(4)
	msg := randMsg(r, 200)
	clean := makeCodeword(c, msg)
	n := len(clean)
	for trial := 0; trial < 100; trial++ {
		cw := make([]uint8, n)
		copy(cw, clean)
		seen := map[int]bool{}
		for len(seen) < 3 {
			p := r.Intn(n)
			if !seen[p] {
				seen[p] = true
				cw[p] ^= 1
			}
		}
		_, ok := c.Decode(cw)
		if ok {
			if s1, s3 := c.Syndromes(cw); s1 != 0 || s3 != 0 {
				t.Fatal("Decode claimed success but left nonzero syndromes")
			}
		}
	}
}

func TestQuickRoundTripWithErrors(t *testing.T) {
	c := New()
	r := prng.New(5)
	f := func(seed uint32, nerr8 uint8) bool {
		rr := prng.New(uint64(seed))
		msg := randMsg(rr, 128+rr.Intn(300))
		cw := makeCodeword(c, msg)
		nerr := int(nerr8) % 3 // 0, 1 or 2 errors
		positions := map[int]bool{}
		for len(positions) < nerr {
			positions[r.Intn(len(cw))] = true
		}
		for p := range positions {
			cw[p] ^= 1
		}
		corrected, ok := c.Decode(cw)
		if !ok || corrected != nerr {
			return false
		}
		clean := makeCodeword(c, msg)
		for i := range cw {
			if cw[i] != clean[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEncodeTooLongPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New().Encode(make([]uint8, MaxMessageBits+1))
}

func BenchmarkEncode492(b *testing.B) {
	c := New()
	msg := randMsg(prng.New(6), 492)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Encode(msg)
	}
}

func BenchmarkDecodeTwoErrors(b *testing.B) {
	c := New()
	r := prng.New(7)
	msg := randMsg(r, 492)
	clean := makeCodeword(c, msg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cw := make([]uint8, len(clean))
		copy(cw, clean)
		cw[i%len(cw)] ^= 1
		cw[(i*7+13)%len(cw)] ^= 1
		c.Decode(cw)
	}
}
