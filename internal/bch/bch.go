// Package bch implements a binary BCH code correcting up to two bit
// errors with 20 parity bits over GF(2^10), the "20-bit BCH code to
// correct any two write disturbance errors" that DIN [16] attaches to its
// encoded memory lines.
//
// The code is the double-error-correcting narrow-sense BCH code of
// natural length n = 1023, shortened to whatever message length the
// caller uses (DIN messages are at most 492 bits). The generator
// polynomial is g(x) = m1(x) * m3(x), the product of the minimal
// polynomials of alpha and alpha^3, of degree 20.
package bch

import (
	"wlcrc/internal/gf2"
)

// ParityBits is the number of parity bits of the t=2, m=10 code.
const ParityBits = 20

// MaxMessageBits is the maximum message length of the shortened code.
const MaxMessageBits = 1023 - ParityBits

// Code is a double-error-correcting BCH codec. It is safe for concurrent
// use after construction.
type Code struct {
	field *gf2.Field
	gen   []uint8 // generator polynomial coefficients, ascending, degree 20
}

// New constructs the t=2 BCH code over GF(2^10).
func New() *Code {
	f := gf2.NewField(10, 0)
	m1 := f.MinimalPoly(1)
	m3 := f.MinimalPoly(3)
	gen := polyMulGF2(m1, m3)
	if len(gen)-1 != ParityBits {
		panic("bch: generator polynomial degree != 20")
	}
	return &Code{field: f, gen: gen}
}

func polyMulGF2(a, b []uint8) []uint8 {
	out := make([]uint8, len(a)+len(b)-1)
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		for j, bj := range b {
			out[i+j] ^= bj
		}
	}
	return out
}

// Generator returns a copy of the generator polynomial coefficients in
// ascending degree order.
func (c *Code) Generator() []uint8 {
	out := make([]uint8, len(c.gen))
	copy(out, c.gen)
	return out
}

// Encode computes the ParityBits parity bits for the message bits msg
// (each element 0 or 1, msg[0] is the lowest-degree coefficient). The
// systematic codeword is conceptually msg(x)*x^20 + parity(x): parity
// bits occupy positions 0..19, message bits positions 20..20+len(msg)-1.
func (c *Code) Encode(msg []uint8) []uint8 {
	parity := make([]uint8, ParityBits)
	c.EncodeTo(msg, parity)
	return parity
}

// EncodeTo computes the parity bits into caller storage — the
// allocation-free form of Encode. len(parity) must be ParityBits.
func (c *Code) EncodeTo(msg, parity []uint8) {
	if len(msg) > MaxMessageBits {
		panic("bch: message too long for shortened code")
	}
	if len(parity) != ParityBits {
		panic("bch: EncodeTo parity length != ParityBits")
	}
	// Polynomial division of msg(x)*x^20 by g(x) over GF(2), LFSR style.
	rem := parity
	for i := range rem {
		rem[i] = 0
	}
	for i := len(msg) - 1; i >= 0; i-- {
		feedback := msg[i] ^ rem[ParityBits-1]
		copy(rem[1:], rem[:ParityBits-1])
		rem[0] = 0
		if feedback == 1 {
			for j := 0; j < ParityBits; j++ {
				rem[j] ^= c.gen[j]
			}
		}
	}
}

// Syndromes evaluates the received codeword at alpha and alpha^3.
// codeword[i] is the coefficient of x^i (parity first, then message).
func (c *Code) Syndromes(codeword []uint8) (s1, s3 uint16) {
	f := c.field
	for i, bit := range codeword {
		if bit == 0 {
			continue
		}
		s1 ^= f.Exp(i)
		s3 ^= f.Exp(3 * i)
	}
	return s1, s3
}

// Decode corrects up to two bit errors in place. codeword is the full
// shortened codeword: parity bits at positions 0..19 followed by message
// bits. It returns the number of corrected bits and ok=false if the
// syndrome pattern is inconsistent with <= 2 errors within the codeword.
func (c *Code) Decode(codeword []uint8) (corrected int, ok bool) {
	f := c.field
	s1, s3 := c.Syndromes(codeword)
	if s1 == 0 && s3 == 0 {
		return 0, true
	}
	if s1 != 0 && s3 == f.Pow(s1, 3) {
		// Single error at position log(s1).
		pos := f.Log(s1)
		if pos >= len(codeword) {
			return 0, false // error located in the shortened (absent) region
		}
		codeword[pos] ^= 1
		return 1, true
	}
	if s1 == 0 {
		// s1 == 0 but s3 != 0 cannot happen with <= 2 errors.
		return 0, false
	}
	// Two errors: error locator sigma(x) = x^2 + s1*x + (s3/s1 + s1^2).
	sigma2 := f.Add(f.Div(s3, s1), f.Pow(s1, 2))
	if sigma2 == 0 {
		return 0, false
	}
	// Chien search for roots x = alpha^i; error positions are the logs of
	// the roots' inverses... For sigma(x) = (x+X1)(x+X2) with error
	// locators X1 = alpha^p1, X2 = alpha^p2, the roots are X1 and X2
	// themselves here because sigma was built from elementary symmetric
	// functions of the locators.
	var positions []int
	for i := 0; i < len(codeword); i++ {
		x := f.Exp(i)
		v := f.Add(f.Add(f.Mul(x, x), f.Mul(s1, x)), sigma2)
		if v == 0 {
			positions = append(positions, i)
			if len(positions) == 2 {
				break
			}
		}
	}
	if len(positions) != 2 {
		return 0, false
	}
	for _, p := range positions {
		codeword[p] ^= 1
	}
	// Verify.
	if v1, v3 := c.Syndromes(codeword); v1 != 0 || v3 != 0 {
		for _, p := range positions {
			codeword[p] ^= 1 // undo
		}
		return 0, false
	}
	return 2, true
}
